package obs

import (
	"testing"
)

// fakeClock is a deterministic time source for span tests.
type fakeClock struct{ t float64 }

func (f *fakeClock) now() float64 { return f.t }

func TestCountersAddGetReset(t *testing.T) {
	r := NewRecorder(3, nil)
	r.Add(DPOps, 10)
	r.Add(DPOps, 5)
	r.Add(HaloBytes, 128)
	if got := r.Get(DPOps); got != 15 {
		t.Fatalf("DPOps = %d, want 15", got)
	}
	if got := r.Get(HaloBytes); got != 128 {
		t.Fatalf("HaloBytes = %d, want 128", got)
	}
	if got := r.Get(Rounds); got != 0 {
		t.Fatalf("Rounds = %d, want 0", got)
	}
	r.Reset()
	if got := r.Get(DPOps); got != 0 {
		t.Fatalf("after Reset DPOps = %d, want 0", got)
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || name == "counter-?" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
}

func TestSpanNesting(t *testing.T) {
	fc := &fakeClock{}
	r := NewRecorder(0, fc.now)

	fc.t = 1.0
	r.Begin("round 0", "round")
	fc.t = 2.0
	r.Begin("phase 0", "phase")
	fc.t = 3.0
	r.Begin("L2", "level")
	if d := r.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
	fc.t = 4.0
	r.End() // L2
	fc.t = 5.0
	r.End() // phase
	fc.t = 7.0
	r.End() // round
	if d := r.Depth(); d != 0 {
		t.Fatalf("Depth = %d, want 0", d)
	}

	s := r.Snapshot()
	if len(s.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(s.Spans))
	}
	// Spans are recorded in Begin order with depths 0,1,2.
	want := []struct {
		name       string
		depth      int
		start, dur float64
	}{
		{"round 0", 0, 1.0, 6.0},
		{"phase 0", 1, 2.0, 3.0},
		{"L2", 2, 3.0, 1.0},
	}
	for i, wv := range want {
		sp := s.Spans[i]
		if sp.Name != wv.name || sp.Depth != wv.depth || sp.Start != wv.start || sp.Dur != wv.dur {
			t.Fatalf("span %d = %+v, want %+v", i, sp, wv)
		}
	}
	// Parent spans must contain their children.
	if s.Spans[1].Start < s.Spans[0].Start || s.Spans[1].Start+s.Spans[1].Dur > s.Spans[0].Start+s.Spans[0].Dur {
		t.Fatal("phase span escapes its round span")
	}
}

func TestOpenSpansClosedAtSnapshot(t *testing.T) {
	fc := &fakeClock{}
	r := NewRecorder(0, fc.now)
	fc.t = 1.0
	r.Begin("round 0", "round")
	fc.t = 4.0
	s := r.Snapshot()
	if len(s.Spans) != 1 || s.Spans[0].Dur != 3.0 {
		t.Fatalf("open span not measured to snapshot time: %+v", s.Spans)
	}
	r.End() // still balanced afterwards
}

func TestEndWithoutBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced End did not panic")
		}
	}()
	NewRecorder(0, nil).End()
}

func TestMaxSpansCap(t *testing.T) {
	fc := &fakeClock{}
	r := NewRecorder(0, fc.now)
	r.SetMaxSpans(2)
	for i := 0; i < 5; i++ {
		r.Begin("s", "c")
	}
	for i := 0; i < 5; i++ {
		r.End()
	}
	if got := r.Get(SpansDropped); got != 3 {
		t.Fatalf("SpansDropped = %d, want 3", got)
	}
	s := r.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(s.Spans))
	}
	for _, sp := range s.Spans {
		if sp.Dur < 0 {
			t.Fatalf("span left open after balanced Ends: %+v", sp)
		}
	}
	if r.Depth() != 0 {
		t.Fatalf("Depth = %d after balanced Ends, want 0", r.Depth())
	}
}

func TestHaloLevelBytes(t *testing.T) {
	r := NewRecorder(0, nil)
	r.AddHaloLevel(2, 100)
	r.AddHaloLevel(4, 50)
	r.AddHaloLevel(2, 10)
	s := r.Snapshot()
	if len(s.HaloLevelBytes) != 5 || s.HaloLevelBytes[2] != 110 || s.HaloLevelBytes[4] != 50 || s.HaloLevelBytes[3] != 0 {
		t.Fatalf("HaloLevelBytes = %v", s.HaloLevelBytes)
	}
}

func TestTotalsAggregatesAcrossRanks(t *testing.T) {
	mk := func(rank int, msgs, dpops int64, halo []int64, end float64) Snapshot {
		counters := make([]int64, NumCounters)
		counters[DPOps] = dpops
		return Snapshot{
			Rank: rank, MsgsSent: msgs, BytesSent: msgs * 10,
			Collectives: 1, Counters: counters, HaloLevelBytes: halo, End: end,
		}
	}
	tot := Totals(
		mk(0, 3, 100, []int64{0, 0, 7}, 1.5),
		mk(1, 5, 200, []int64{0, 0, 3, 9}, 2.5),
		mk(2, 2, 50, nil, 0.5),
	)
	if tot.MsgsSent != 10 || tot.BytesSent != 100 || tot.Collectives != 3 {
		t.Fatalf("traffic totals wrong: %+v", tot)
	}
	if tot.Counter(DPOps) != 350 {
		t.Fatalf("DPOps total = %d, want 350", tot.Counter(DPOps))
	}
	if len(tot.HaloLevelBytes) != 4 || tot.HaloLevelBytes[2] != 10 || tot.HaloLevelBytes[3] != 9 {
		t.Fatalf("halo totals = %v", tot.HaloLevelBytes)
	}
	if tot.End != 2.5 {
		t.Fatalf("End = %v, want max 2.5", tot.End)
	}
}

func TestSnapshotCounterShortSliceSafe(t *testing.T) {
	s := Snapshot{Counters: []int64{1}}
	if s.Counter(HaloMsgs) != 1 || s.Counter(DPOps) != 0 {
		t.Fatal("short counter slice must read as zero beyond its length")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(DPOps, 1)
	r.AddHaloLevel(3, 10)
	r.Begin("x", "y")
	r.End()
	r.Observe(HistSendLatency, 1e-6)
	r.FlowSend(0, 1, 42)
	r.FlowRecv(0, 1, 42)
	r.SetPhaseLabel("phase 1")
	r.Reset()
	r.SetMaxSpans(10)
	r.SetMaxFlows(10)
	if r.Enabled() || r.Get(DPOps) != 0 || r.Depth() != 0 || r.Rank() != -1 || r.PhaseLabel() != "" {
		t.Fatal("nil recorder misbehaves")
	}
	if s := r.Snapshot(); s.Rank != -1 || len(s.Spans) != 0 || len(s.Flows) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if s := r.LiteSnapshot(); s.Rank != -1 {
		t.Fatalf("nil lite snapshot = %+v", s)
	}
}

// TestDisabledRecorderAllocatesNothing pins the cost of instrumented-off
// code: calling every hot-path method on a nil recorder performs zero
// allocations (counter Adds on an enabled recorder are also free).
func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		r.Add(DPOps, 1)
		r.AddHaloLevel(2, 64)
		r.Begin(LevelName(3), "level")
		r.End()
		r.Observe(HistRecvWait, 1e-6)
		r.FlowSend(0, 1, 7)
		r.FlowRecv(0, 1, 7)
		r.SetPhaseLabel("p")
	}); n != 0 {
		t.Fatalf("nil recorder allocates %v per run, want 0", n)
	}
	enabled := NewRecorder(0, func() float64 { return 0 })
	enabled.AddHaloLevel(8, 1) // pre-size the level slice
	if n := testing.AllocsPerRun(1000, func() {
		enabled.Add(DPOps, 1)
		enabled.AddHaloLevel(2, 64)
		enabled.Observe(HistRecvWait, 1e-6) // fixed bucket array: free
	}); n != 0 {
		t.Fatalf("enabled counter adds allocate %v per run, want 0", n)
	}
}

func TestCachedNamesAllocateNothing(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() {
		_ = LevelName(5)
		_ = PhaseName(7)
		_ = RoundName(1)
		_ = HaloName(3)
	}); n != 0 {
		t.Fatalf("cached names allocate %v per run, want 0", n)
	}
	// Out-of-cache indices still work.
	if LevelName(1000) != "L1000" || HaloName(-2) != "halo L-2" {
		t.Fatal("fallback names wrong")
	}
}

func TestResetReanchorsTimeBase(t *testing.T) {
	fc := &fakeClock{t: 5}
	r := NewRecorder(0, fc.now)
	fc.t = 10
	r.Reset()
	fc.t = 11
	r.Begin("a", "c")
	fc.t = 12
	r.End()
	s := r.Snapshot()
	if s.Spans[0].Start != 1.0 {
		t.Fatalf("span start = %v, want 1.0 (re-anchored base)", s.Spans[0].Start)
	}
}
