package obs

// Build identity of the running binary, read once from the Go
// toolchain's embedded module and VCS metadata. The serving layer
// exports it as the midas_build_info gauge (the Prometheus convention:
// constant 1 with the identity in labels) and the bench harness stamps
// it into reports so a regression can be tied to the exact revision
// that produced it.

import (
	"runtime/debug"
	"strings"
	"sync"
)

// BuildInfo identifies the running binary: module version, Go
// toolchain, and — when the binary was built inside a VCS checkout —
// the revision it was built from.
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for source
	// builds, a semver tag for released ones).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
	// Revision is the VCS commit hash ("" when built outside a
	// checkout or with -buildvcs=false).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build's checkout.
	Dirty bool `json:"dirty,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// GetBuildInfo returns the binary's build identity (cached after the
// first call). Every field degrades to a stable placeholder when the
// runtime carries no metadata, so callers can render it unconditionally.
func GetBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo = readBuildInfo(debug.ReadBuildInfo())
	})
	return buildInfo
}

// readBuildInfo extracts the fields from a runtime/debug.BuildInfo
// (split from GetBuildInfo so tests can feed synthetic metadata).
func readBuildInfo(bi *debug.BuildInfo, ok bool) BuildInfo {
	out := BuildInfo{Version: "unknown", GoVersion: "unknown"}
	if !ok || bi == nil {
		return out
	}
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		out.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Dirty = s.Value == "true"
		}
	}
	return out
}

// ShortRevision is the conventional 12-character abbreviation of the
// build's VCS revision ("" when unknown).
func (b BuildInfo) ShortRevision() string {
	if len(b.Revision) > 12 {
		return b.Revision[:12]
	}
	return b.Revision
}

// BuildInfoMetric renders the build identity as the standard
// info-style gauge: constant value 1 with the identity in labels, for
// the MetricsHandler extra-metrics hook.
func BuildInfoMetric() Metric {
	b := GetBuildInfo()
	var lb strings.Builder
	lb.WriteString(`{version="`)
	lb.WriteString(promEscape(b.Version))
	lb.WriteString(`",goversion="`)
	lb.WriteString(promEscape(b.GoVersion))
	lb.WriteString(`",revision="`)
	lb.WriteString(promEscape(b.ShortRevision()))
	lb.WriteString(`"}`)
	return Metric{
		Name:    "midas_build_info",
		Help:    "Build identity of this binary (constant 1; the identity is in the labels).",
		Type:    "gauge",
		Samples: []MetricSample{{Labels: lb.String(), Value: 1}},
	}
}

// promEscape escapes a label value for the Prometheus text format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
