// Package obs is the observability layer of the MIDAS runtime: typed
// per-rank counters, nested span recording, and exporters that turn a
// run into an operator-readable summary table or a Chrome trace_event
// timeline (docs/OBSERVABILITY.md is the operations guide).
//
// The package is deliberately zero-dependency (standard library only)
// and allocation-light: every Recorder method is a no-op on a nil
// receiver, so instrumented code holds a possibly-nil *Recorder and
// calls it unconditionally — an instrumented-off run pays one pointer
// test per event and allocates nothing (asserted by TestDisabled
// RecorderAllocatesNothing and the comm-path testing.AllocsPerRun
// test).
//
// # Model
//
// A Recorder belongs to one rank (one goroutine at a time — the SPMD
// discipline of internal/comm). It holds
//
//   - a fixed array of typed Counters (halo traffic, DP operations,
//     rounds/phases/levels entered, …) — message and byte totals are
//     deliberately NOT duplicated here: internal/comm's Stats already
//     counts them, and Snapshot merges the two;
//   - per-DP-level halo byte volumes (AddHaloLevel), the quantity the
//     paper's communication analysis (Theorem 2) bounds level by level;
//   - a stack of nested spans (Begin/End) in the time base the now
//     function supplies: the rank's virtual α–β clock for distributed
//     runs, wall time for sequential ones.
//
// Snapshot freezes a Recorder into a serializable value; the exporters
// in export.go consume snapshots from any number of ranks.
//
// # Span nesting
//
// Spans nest strictly (Begin/End must match like parentheses within a
// rank); the recorded Depth lets exporters and tests reconstruct the
// round → phase → level → halo hierarchy that core's instrumentation
// emits. A bounded span buffer (MaxSpans) protects long runs: once
// full, further spans are counted in SpansDropped instead of recorded,
// and Ends stay balanced.
package obs

import "time"

// Counter identifies one typed per-rank counter. Counters hold
// quantities that are measured (counted), never modeled — see
// docs/OBSERVABILITY.md for the full dictionary.
type Counter uint8

// The counter set. NumCounters bounds the array; new counters must be
// appended (exports index by value) and named in counterNames.
const (
	// HaloMsgs counts aggregated halo-exchange messages sent by the
	// rank (one per (source part, destination part, DP level) pair).
	HaloMsgs Counter = iota
	// HaloBytes counts halo-exchange payload bytes sent by the rank.
	HaloBytes
	// DPOps counts field-element operations executed by the rank's DP
	// kernels (the op-count that internal/core's cost model converts
	// to modeled seconds).
	DPOps
	// Rounds counts amplification rounds entered.
	Rounds
	// Phases counts phases (distributed) or iteration batches
	// (sequential) entered.
	Phases
	// Levels counts DP levels (path/scan) or decomposition nodes
	// (tree) evaluated.
	Levels
	// SpansDropped counts spans discarded after the MaxSpans cap.
	SpansDropped
	// FaultsInjected counts faults the chaos transport injected into
	// this rank's traffic: drops, delays, duplicates, reorders, and
	// severed-link send failures (docs/FAULTS.md).
	FaultsInjected
	// SendRetries counts send attempts repeated after a transport
	// failure — injected (fault wrapper) or real (TCP write error).
	SendRetries
	// BackoffNanos accumulates the nanoseconds spent backing off
	// between send retries (virtual time for the local chaos
	// transport, wall time for TCP reconnects).
	BackoffNanos

	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	"halo-msgs", "halo-bytes", "dp-ops", "rounds", "phases", "levels", "spans-dropped",
	"faults-injected", "send-retries", "backoff-nanos",
}

// String returns the stable kebab-case name used by the exporters.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter-?"
}

// Span is one closed (or still-open, at snapshot time) timed section of
// a rank's execution. Start is seconds since the recorder's time base;
// Dur is its extent in the same base.
type Span struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Start float64 `json:"start"`
	Dur   float64 `json:"dur"`
	Depth int     `json:"depth"`
}

// DefaultMaxSpans bounds a Recorder's span buffer (~24 MiB of spans per
// rank at the default; SetMaxSpans overrides).
const DefaultMaxSpans = 1 << 19

// Recorder collects one rank's counters and spans. The zero value is
// not usable; construct with NewRecorder. A nil *Recorder is the
// disabled recorder: every method is a cheap no-op.
type Recorder struct {
	rank      int
	now       func() float64
	base      float64 // subtracted from now(): Reset re-anchors here
	counters  [NumCounters]int64
	haloLevel []int64 // halo bytes indexed by DP level
	spans     []Span
	open      []int32 // indices of open spans (the nesting stack)
	openDrop  int     // Begins swallowed after the cap, awaiting Ends
	maxSpans  int
}

// NewRecorder returns a recorder for the given rank using now as its
// time source (seconds; monotone non-decreasing). A nil now uses wall
// time anchored at the call — the right base for sequential runs.
// Distributed ranks should pass their virtual clock (Comm.EnableObs
// does) so the timeline matches the modeled makespan.
func NewRecorder(rank int, now func() float64) *Recorder {
	if now == nil {
		start := time.Now()
		now = func() float64 { return time.Since(start).Seconds() }
	}
	return &Recorder{rank: rank, now: now, base: now(), maxSpans: DefaultMaxSpans}
}

// Rank returns the rank the recorder was created for.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Enabled reports whether the recorder records (false exactly for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetMaxSpans overrides the span-buffer cap (n <= 0 keeps the current
// cap). Spans beyond the cap are counted in SpansDropped.
func (r *Recorder) SetMaxSpans(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.maxSpans = n
}

// Add increments counter c by n. No-op on a nil recorder.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.counters[c] += n
}

// Get returns counter c's current value (0 on a nil recorder).
func (r *Recorder) Get(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c]
}

// AddHaloLevel charges n halo bytes to the given DP level (and to the
// HaloBytes/HaloMsgs totals the caller maintains separately).
func (r *Recorder) AddHaloLevel(level int, n int64) {
	if r == nil || level < 0 {
		return
	}
	for len(r.haloLevel) <= level {
		r.haloLevel = append(r.haloLevel, 0)
	}
	r.haloLevel[level] += n
}

// Begin opens a span. Every Begin must be matched by an End on the same
// rank; spans nest strictly. name should be stable across ranks (use
// LevelName/PhaseName/RoundName for the hot ones — they do not
// allocate for small indices).
func (r *Recorder) Begin(name, cat string) {
	if r == nil {
		return
	}
	if len(r.spans) >= r.maxSpans {
		r.openDrop++
		r.counters[SpansDropped]++
		return
	}
	r.spans = append(r.spans, Span{
		Name:  name,
		Cat:   cat,
		Start: r.now() - r.base,
		Dur:   -1, // open
		Depth: len(r.open) + r.openDrop,
	})
	r.open = append(r.open, int32(len(r.spans)-1))
}

// End closes the innermost open span.
func (r *Recorder) End() {
	if r == nil {
		return
	}
	if r.openDrop > 0 {
		r.openDrop--
		return
	}
	if len(r.open) == 0 {
		panic("obs: End without matching Begin")
	}
	i := r.open[len(r.open)-1]
	r.open = r.open[:len(r.open)-1]
	sp := &r.spans[i]
	sp.Dur = r.now() - r.base - sp.Start
}

// Depth returns the current span nesting depth (0 outside any span).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.open) + r.openDrop
}

// Reset discards all recorded data and re-anchors the time base at the
// current reading of the time source. Invoke it between independent
// repetitions of an experiment on a reused world, after the virtual
// clock itself has been reset (Comm.ResetTelemetry does both, in
// order).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.counters = [NumCounters]int64{}
	r.haloLevel = r.haloLevel[:0]
	r.spans = r.spans[:0]
	r.open = r.open[:0]
	r.openDrop = 0
	r.base = r.now()
}

// Snapshot freezes the recorder into an exportable value. Spans still
// open at snapshot time are included with their duration measured up to
// now. The communication fields (MsgsSent …) are zero here; callers
// that own traffic counters fill them in (comm.Comm.ObsSnapshot merges
// its Stats).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Rank: -1}
	}
	now := r.now() - r.base
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	for i := range spans {
		if spans[i].Dur < 0 {
			spans[i].Dur = now - spans[i].Start
		}
	}
	return Snapshot{
		Rank:           r.rank,
		Counters:       append([]int64(nil), r.counters[:]...),
		HaloLevelBytes: append([]int64(nil), r.haloLevel...),
		Spans:          spans,
		End:            now,
	}
}

// Snapshot is the serializable form of one rank's telemetry: the
// recorder's counters and spans merged with the rank's communication
// Stats. It is what the exporters consume and what distributed runs
// gather to rank 0 (comm.Comm.GatherObsSnapshots).
type Snapshot struct {
	Rank int `json:"rank"`

	// Traffic counters, from internal/comm's Stats (not duplicated in
	// Counters; see the package comment).
	MsgsSent    int64 `json:"msgsSent"`
	MsgsRecvd   int64 `json:"msgsRecvd"`
	BytesSent   int64 `json:"bytesSent"`
	BytesRecvd  int64 `json:"bytesRecvd"`
	Collectives int64 `json:"collectives"`

	// Counters is indexed by Counter; len is NumCounters (shorter
	// slices read as zero, so old snapshots stay decodable).
	Counters []int64 `json:"counters"`

	// HaloLevelBytes[j] is the halo payload volume the rank sent for
	// DP level j.
	HaloLevelBytes []int64 `json:"haloLevelBytes,omitempty"`

	Spans []Span `json:"spans"`

	// End is the rank's time-base reading at snapshot (virtual seconds
	// for distributed ranks — the rank's share of the modeled
	// makespan — wall seconds for sequential runs).
	End float64 `json:"end"`
}

// Counter returns counter c from the snapshot (0 when absent).
func (s Snapshot) Counter(c Counter) int64 {
	if int(c) < len(s.Counters) {
		return s.Counters[c]
	}
	return 0
}

// Totals aggregates snapshots across ranks: counters, traffic, and
// per-level halo volumes sum; End takes the maximum (the makespan of
// the snapshot set); spans are not merged (Rank is -1 in the result).
func Totals(snaps ...Snapshot) Snapshot {
	out := Snapshot{Rank: -1, Counters: make([]int64, NumCounters)}
	for _, s := range snaps {
		out.MsgsSent += s.MsgsSent
		out.MsgsRecvd += s.MsgsRecvd
		out.BytesSent += s.BytesSent
		out.BytesRecvd += s.BytesRecvd
		out.Collectives += s.Collectives
		for c := Counter(0); c < NumCounters; c++ {
			out.Counters[c] += s.Counter(c)
		}
		for j, b := range s.HaloLevelBytes {
			for len(out.HaloLevelBytes) <= j {
				out.HaloLevelBytes = append(out.HaloLevelBytes, 0)
			}
			out.HaloLevelBytes[j] += b
		}
		if s.End > out.End {
			out.End = s.End
		}
	}
	return out
}

// CategorySeconds sums span durations by category for one rank.
// Nested spans each contribute their full extent (a phase contains its
// levels; the categories are a hierarchy, not a partition — see
// docs/OBSERVABILITY.md).
func (s Snapshot) CategorySeconds() map[string]float64 {
	out := make(map[string]float64)
	for _, sp := range s.Spans {
		out[sp.Cat] += sp.Dur
	}
	return out
}

// Cached small-index span names, so hot instrumentation sites do not
// allocate. Indices beyond the cache fall back to fmt-free manual
// formatting via itoa (still allocating only for the rare big index).
const nameCache = 64

var (
	levelNames [nameCache]string
	phaseNames [nameCache]string
	roundNames [nameCache]string
	haloNames  [nameCache]string
)

func init() {
	for i := 0; i < nameCache; i++ {
		levelNames[i] = "L" + itoa(i)
		phaseNames[i] = "phase " + itoa(i)
		roundNames[i] = "round " + itoa(i)
		haloNames[i] = "halo L" + itoa(i)
	}
}

// itoa is a minimal strconv.Itoa (kept local so the hot-path helpers
// stay obviously allocation-free for cached indices).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

// LevelName returns the span name for DP level j ("L3").
func LevelName(j int) string {
	if j >= 0 && j < nameCache {
		return levelNames[j]
	}
	return "L" + itoa(j)
}

// PhaseName returns the span name for phase index p ("phase 7").
func PhaseName(p int) string {
	if p >= 0 && p < nameCache {
		return phaseNames[p]
	}
	return "phase " + itoa(p)
}

// RoundName returns the span name for amplification round r.
func RoundName(r int) string {
	if r >= 0 && r < nameCache {
		return roundNames[r]
	}
	return "round " + itoa(r)
}

// HaloName returns the span name for the halo exchange of DP level j.
func HaloName(j int) string {
	if j >= 0 && j < nameCache {
		return haloNames[j]
	}
	return "halo L" + itoa(j)
}
