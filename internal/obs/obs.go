// Package obs is the observability layer of the MIDAS runtime: typed
// per-rank counters, nested span recording, and exporters that turn a
// run into an operator-readable summary table or a Chrome trace_event
// timeline (docs/OBSERVABILITY.md is the operations guide).
//
// The package is deliberately zero-dependency (standard library only)
// and allocation-light: every Recorder method is a no-op on a nil
// receiver, so instrumented code holds a possibly-nil *Recorder and
// calls it unconditionally — an instrumented-off run pays one pointer
// test per event and allocates nothing (asserted by TestDisabled
// RecorderAllocatesNothing and the comm-path testing.AllocsPerRun
// test).
//
// # Model
//
// A Recorder belongs to one rank (one goroutine at a time — the SPMD
// discipline of internal/comm). It holds
//
//   - a fixed array of typed Counters (halo traffic, DP operations,
//     rounds/phases/levels entered, …) — message and byte totals are
//     deliberately NOT duplicated here: internal/comm's Stats already
//     counts them, and Snapshot merges the two;
//   - per-DP-level halo byte volumes (AddHaloLevel), the quantity the
//     paper's communication analysis (Theorem 2) bounds level by level;
//   - a stack of nested spans (Begin/End) in the time base the now
//     function supplies: the rank's virtual α–β clock for distributed
//     runs, wall time for sequential ones.
//
// Snapshot freezes a Recorder into a serializable value; the exporters
// in export.go consume snapshots from any number of ranks.
//
// # Span nesting
//
// Spans nest strictly (Begin/End must match like parentheses within a
// rank); the recorded Depth lets exporters and tests reconstruct the
// round → phase → level → halo hierarchy that core's instrumentation
// emits. A bounded span buffer (MaxSpans) protects long runs: once
// full, further spans are counted in SpansDropped instead of recorded,
// and Ends stay balanced.
package obs

import (
	"sync"
	"time"
)

// Counter identifies one typed per-rank counter. Counters hold
// quantities that are measured (counted), never modeled — see
// docs/OBSERVABILITY.md for the full dictionary.
type Counter uint8

// The counter set. NumCounters bounds the array; new counters must be
// appended (exports index by value) and named in counterNames.
const (
	// HaloMsgs counts aggregated halo-exchange messages sent by the
	// rank (one per (source part, destination part, DP level) pair).
	HaloMsgs Counter = iota
	// HaloBytes counts halo-exchange payload bytes sent by the rank.
	HaloBytes
	// DPOps counts field-element operations executed by the rank's DP
	// kernels (the op-count that internal/core's cost model converts
	// to modeled seconds).
	DPOps
	// Rounds counts amplification rounds entered.
	Rounds
	// Phases counts phases (distributed) or iteration batches
	// (sequential) entered.
	Phases
	// Levels counts DP levels (path/scan) or decomposition nodes
	// (tree) evaluated.
	Levels
	// SpansDropped counts spans discarded after the MaxSpans cap.
	SpansDropped
	// FaultsInjected counts faults the chaos transport injected into
	// this rank's traffic: drops, delays, duplicates, reorders, and
	// severed-link send failures (docs/FAULTS.md).
	FaultsInjected
	// SendRetries counts send attempts repeated after a transport
	// failure — injected (fault wrapper) or real (TCP write error).
	SendRetries
	// BackoffNanos accumulates the nanoseconds spent backing off
	// between send retries (virtual time for the local chaos
	// transport, wall time for TCP reconnects).
	BackoffNanos
	// FlowsDropped counts message-flow events discarded after the
	// MaxFlows cap (trace stitching degrades; counters stay exact).
	FlowsDropped
	// CellsSkipped counts DP cell updates elided because the source
	// iteration-vector was all-zero (gf.AnyNonZero pre-check): work
	// that DPOps models analytically but the kernels never executed.
	CellsSkipped

	// The serve-* counters belong to the query-service plane
	// (internal/serve, docs/SERVING.md): the serving daemon holds one
	// process-wide Recorder and charges admission, cache, and lifecycle
	// events to it, so the service shares the /metrics pipeline with
	// the algorithm counters above.

	// ServeAdmitted counts queries accepted into the admission queue.
	ServeAdmitted
	// ServeRejected counts queries refused admission (queue full, or
	// the server was draining).
	ServeRejected
	// ServeCacheHits counts queries answered from the result cache.
	ServeCacheHits
	// ServeCacheMisses counts queries that actually executed the DP
	// (the singleflight leader's runs).
	ServeCacheMisses
	// ServeSingleflightShared counts queries that attached to an
	// identical in-flight execution instead of running their own.
	ServeSingleflightShared
	// ServeCancelled counts queries that ended cancelled or past their
	// deadline.
	ServeCancelled
	// ServeCompleted counts queries that ran (or were served from
	// cache/singleflight) to a successful result.
	ServeCompleted
	// ServeBatches counts batched DP executions assembled by the
	// admission window (occupancy ≥ 2; single-lane flights run the
	// ordinary path and are not counted here).
	ServeBatches
	// ServeBatchLanes counts lanes answered by batched executions;
	// ServeBatchLanes / ServeBatches is the mean occupancy.
	ServeBatchLanes
	// ServeSlowQueries counts queries whose total latency exceeded the
	// service's slow-query threshold (each also emits a Warn-level
	// slow-query log with its full stage timeline).
	ServeSlowQueries
	// ServeTraceEvictions counts completed QueryTraces evicted from the
	// flight recorder's ring buffer to make room for newer ones.
	ServeTraceEvictions

	// The store-* counters belong to the persistent graph repository
	// (internal/store, docs/STORAGE.md).

	// StoreHits counts graph acquisitions served by an already-mapped
	// resident handle (no filesystem work).
	StoreHits
	// StoreMisses counts graph acquisitions that had to open and map
	// the backing file (cold starts; their latency lands in the
	// store-cold-start histogram).
	StoreMisses
	// StoreEvictions counts mapped graphs unmapped by the residency
	// LRU to stay under the mapped-bytes budget.
	StoreEvictions

	// The cluster-* counters belong to the scale-out fleet layer
	// (internal/cluster, docs/CLUSTER.md): digest-sharded placement,
	// query forwarding, store-based shard handoff, and cross-replica
	// lease worlds.

	// ClusterForwards counts queries this replica proxied to a shard
	// owner instead of serving locally.
	ClusterForwards
	// ClusterForwardRetries counts forward attempts repeated against
	// another owner after a transport failure or a 503 from the first.
	ClusterForwardRetries
	// ClusterReplicaHits counts queries this replica answered locally
	// because placement named it an owner of the graph's shard.
	ClusterReplicaHits
	// ClusterHandoffs counts shards this replica pulled from a peer
	// (sealed v2 graph file + partition artifacts) after placement made
	// it an owner — rebalances and on-demand pulls both count.
	ClusterHandoffs
	// ClusterLeaseFailures counts cross-replica lease worlds that died
	// (a leased rank failed or never joined) and fell back to the
	// local resilient path.
	ClusterLeaseFailures
	// ClusterHeartbeatMisses counts failed heartbeat probes against
	// fleet peers (enough consecutive misses mark the peer dead).
	ClusterHeartbeatMisses
	// ClusterLeases counts lease worlds this replica joined as a
	// leased (non-coordinating) rank on a peer's behalf.
	ClusterLeases

	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	"halo-msgs", "halo-bytes", "dp-ops", "rounds", "phases", "levels", "spans-dropped",
	"faults-injected", "send-retries", "backoff-nanos", "flows-dropped", "cells-skipped",
	"serve-admitted", "serve-rejected", "serve-cache-hits", "serve-cache-misses",
	"serve-singleflight-shared", "serve-cancelled", "serve-completed",
	"serve-batches", "serve-batch-lanes",
	"serve-slow-queries", "serve-trace-evictions",
	"store-hits", "store-misses", "store-evictions",
	"cluster-forwards", "cluster-forward-retries", "cluster-replica-hits",
	"cluster-handoffs", "cluster-lease-failures", "cluster-heartbeat-misses",
	"cluster-leases",
}

// String returns the stable kebab-case name used by the exporters.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter-?"
}

// Span is one closed (or still-open, at snapshot time) timed section of
// a rank's execution. Start is seconds since the recorder's time base;
// Dur is its extent in the same base. Tid selects the trace-export row
// within the snapshot's pid lane; Recorder-produced spans always carry
// 0 (one thread per rank), while synthesized snapshots (the serving
// layer's query lane) spread concurrent work across rows.
type Span struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Start float64 `json:"start"`
	Dur   float64 `json:"dur"`
	Depth int     `json:"depth"`
	Tid   int     `json:"tid,omitempty"`
}

// DefaultMaxSpans bounds a Recorder's span buffer (~24 MiB of spans per
// rank at the default; SetMaxSpans overrides).
const DefaultMaxSpans = 1 << 19

// DefaultMaxFlows bounds a Recorder's flow-event buffer; overflow is
// counted in FlowsDropped.
const DefaultMaxFlows = 1 << 19

// Flow is one endpoint of a cross-rank message flow: the send side
// (Recv false) or the receive side (Recv true). Both endpoints derive
// the same ID from the (sender, receiver, context, per-stream ordinal)
// tuple — delivery is exactly-once and in-order per stream, so the
// n-th receive on a stream matches the n-th send and no flow id needs
// to travel on the wire. The trace exporter turns matched pairs into
// Chrome trace_event flow ("s"/"f") events stitching sender and
// receiver timelines together.
type Flow struct {
	ID   uint64  `json:"id"`
	TS   float64 `json:"ts"` // seconds since the recorder's time base
	Recv bool    `json:"recv,omitempty"`
}

// flowKey identifies one directed per-context message stream.
type flowKey struct {
	src, dst int
	ctx      uint64
	recv     bool
}

// flowMix is the splitmix64 finalizer — a cheap, well-distributed hash
// for deriving flow ids.
func flowMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// flowID derives the id both endpoints of the n-th message on stream
// (src → dst, ctx) agree on. Never zero (viewers treat 0 as unset).
func flowID(src, dst int, ctx, n uint64) uint64 {
	h := flowMix(uint64(src)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	h = flowMix(h ^ (uint64(dst)*0xd1342543de82ef95 + 1))
	h = flowMix(h ^ ctx)
	h = flowMix(h ^ n)
	if h == 0 {
		h = 1
	}
	return h
}

// Recorder collects one rank's counters, histograms, spans, and flow
// events. The zero value is not usable; construct with NewRecorder. A
// nil *Recorder is the disabled recorder: every method is a cheap
// no-op. An enabled Recorder is safe for concurrent use: the rank's
// goroutine records while the live telemetry endpoint (serve.go)
// snapshots it from HTTP handler goroutines.
type Recorder struct {
	rank int
	now  func() float64 // must itself be safe for concurrent use

	mu        sync.Mutex
	base      float64 // subtracted from now(): Reset re-anchors here
	counters  [NumCounters]int64
	hists     [NumHists]Hist
	haloLevel []int64 // halo bytes indexed by DP level
	spans     []Span
	open      []int32 // indices of open spans (the nesting stack)
	openDrop  int     // Begins swallowed after the cap, awaiting Ends
	maxSpans  int
	flows     []Flow
	flowSeq   map[flowKey]uint64 // next ordinal per directed stream
	maxFlows  int
	phase     string // current phase label (SetPhaseLabel)
}

// NewRecorder returns a recorder for the given rank using now as its
// time source (seconds; monotone non-decreasing). A nil now uses wall
// time anchored at the call — the right base for sequential runs.
// Distributed ranks should pass their virtual clock (Comm.EnableObs
// does) so the timeline matches the modeled makespan.
func NewRecorder(rank int, now func() float64) *Recorder {
	if now == nil {
		start := time.Now()
		now = func() float64 { return time.Since(start).Seconds() }
	}
	return &Recorder{
		rank: rank, now: now, base: now(),
		maxSpans: DefaultMaxSpans,
		maxFlows: DefaultMaxFlows,
		flowSeq:  make(map[flowKey]uint64),
	}
}

// Rank returns the rank the recorder was created for.
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Enabled reports whether the recorder records (false exactly for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetMaxSpans overrides the span-buffer cap (n <= 0 keeps the current
// cap). Spans beyond the cap are counted in SpansDropped.
func (r *Recorder) SetMaxSpans(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.maxSpans = n
	r.mu.Unlock()
}

// SetMaxFlows overrides the flow-event buffer cap (n <= 0 keeps the
// current cap). Flows beyond the cap are counted in FlowsDropped.
func (r *Recorder) SetMaxFlows(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.maxFlows = n
	r.mu.Unlock()
}

// Add increments counter c by n. No-op on a nil recorder.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[c] += n
	r.mu.Unlock()
}

// Get returns counter c's current value (0 on a nil recorder).
func (r *Recorder) Get(c Counter) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	v := r.counters[c]
	r.mu.Unlock()
	return v
}

// Observe records a duration v (seconds) into histogram id. No-op on a
// nil recorder; allocation-free when enabled (fixed bucket array).
func (r *Recorder) Observe(id HistID, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hists[id].observe(v)
	r.mu.Unlock()
}

// FlowSend records the send endpoint of the next message on the
// directed stream (srcWorld → dstWorld, ctx). Call it exactly once per
// message sent, in send order; the matching FlowRecv on the receiver
// derives the same flow id.
func (r *Recorder) FlowSend(srcWorld, dstWorld int, ctx uint64) {
	r.flow(srcWorld, dstWorld, ctx, false)
}

// FlowRecv records the receive endpoint of the next message delivered
// on the directed stream (srcWorld → dstWorld, ctx). Delivery is
// exactly-once and in-order per stream (the transports guarantee it),
// so the n-th FlowRecv pairs with the sender's n-th FlowSend.
func (r *Recorder) FlowRecv(srcWorld, dstWorld int, ctx uint64) {
	r.flow(srcWorld, dstWorld, ctx, true)
}

func (r *Recorder) flow(src, dst int, ctx uint64, recv bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	key := flowKey{src: src, dst: dst, ctx: ctx, recv: recv}
	n := r.flowSeq[key]
	r.flowSeq[key] = n + 1
	if len(r.flows) >= r.maxFlows {
		r.counters[FlowsDropped]++
		r.mu.Unlock()
		return
	}
	r.flows = append(r.flows, Flow{
		ID:   flowID(src, dst, ctx, n),
		TS:   r.now() - r.base,
		Recv: recv,
	})
	r.mu.Unlock()
}

// SetPhaseLabel records the rank's current algorithm phase label for
// the live /healthz endpoint (comm.Comm.SetPhase mirrors into it).
func (r *Recorder) SetPhaseLabel(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phase = name
	r.mu.Unlock()
}

// PhaseLabel returns the label last set by SetPhaseLabel.
func (r *Recorder) PhaseLabel() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	p := r.phase
	r.mu.Unlock()
	return p
}

// AddHaloLevel charges n halo bytes to the given DP level (and to the
// HaloBytes/HaloMsgs totals the caller maintains separately).
func (r *Recorder) AddHaloLevel(level int, n int64) {
	if r == nil || level < 0 {
		return
	}
	r.mu.Lock()
	for len(r.haloLevel) <= level {
		r.haloLevel = append(r.haloLevel, 0)
	}
	r.haloLevel[level] += n
	r.mu.Unlock()
}

// Begin opens a span. Every Begin must be matched by an End on the same
// rank; spans nest strictly. name should be stable across ranks (use
// LevelName/PhaseName/RoundName for the hot ones — they do not
// allocate for small indices).
func (r *Recorder) Begin(name, cat string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.maxSpans {
		r.openDrop++
		r.counters[SpansDropped]++
		return
	}
	r.spans = append(r.spans, Span{
		Name:  name,
		Cat:   cat,
		Start: r.now() - r.base,
		Dur:   -1, // open
		Depth: len(r.open) + r.openDrop,
	})
	r.open = append(r.open, int32(len(r.spans)-1))
}

// End closes the innermost open span.
func (r *Recorder) End() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.openDrop > 0 {
		r.openDrop--
		return
	}
	if len(r.open) == 0 {
		panic("obs: End without matching Begin")
	}
	i := r.open[len(r.open)-1]
	r.open = r.open[:len(r.open)-1]
	sp := &r.spans[i]
	sp.Dur = r.now() - r.base - sp.Start
}

// Depth returns the current span nesting depth (0 outside any span).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	d := len(r.open) + r.openDrop
	r.mu.Unlock()
	return d
}

// Reset discards all recorded data and re-anchors the time base at the
// current reading of the time source. Invoke it between independent
// repetitions of an experiment on a reused world, after the virtual
// clock itself has been reset (Comm.ResetTelemetry does both, in
// order).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = [NumCounters]int64{}
	for i := range r.hists {
		r.hists[i].reset()
	}
	r.haloLevel = r.haloLevel[:0]
	r.spans = r.spans[:0]
	r.open = r.open[:0]
	r.openDrop = 0
	r.flows = r.flows[:0]
	clear(r.flowSeq)
	r.base = r.now()
	r.mu.Unlock()
}

// Snapshot freezes the recorder into an exportable value. Spans still
// open at snapshot time are included with their duration measured up to
// now. The communication fields (MsgsSent …) are zero here; callers
// that own traffic counters fill them in (comm.Comm.ObsSnapshot merges
// its Stats).
func (r *Recorder) Snapshot() Snapshot { return r.snap(true) }

// LiteSnapshot is Snapshot without the span and flow buffers — the
// cheap form the live telemetry endpoint scrapes repeatedly during
// long runs (SpansRecorded still reports the buffer size).
func (r *Recorder) LiteSnapshot() Snapshot { return r.snap(false) }

func (r *Recorder) snap(full bool) Snapshot {
	if r == nil {
		return Snapshot{Rank: -1}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now() - r.base
	hists := make([]HistSnapshot, NumHists)
	for id := HistID(0); id < NumHists; id++ {
		hists[id] = r.hists[id].snapshot(id.String())
	}
	out := Snapshot{
		Rank:           r.rank,
		Phase:          r.phase,
		Counters:       append([]int64(nil), r.counters[:]...),
		HaloLevelBytes: append([]int64(nil), r.haloLevel...),
		Hists:          hists,
		SpansRecorded:  len(r.spans),
		End:            now,
	}
	if !full {
		return out
	}
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	for i := range spans {
		if spans[i].Dur < 0 {
			spans[i].Dur = now - spans[i].Start
		}
	}
	out.Spans = spans
	out.Flows = append([]Flow(nil), r.flows...)
	return out
}

// Snapshot is the serializable form of one rank's telemetry: the
// recorder's counters and spans merged with the rank's communication
// Stats. It is what the exporters consume and what distributed runs
// gather to rank 0 (comm.Comm.GatherObsSnapshots).
type Snapshot struct {
	Rank int `json:"rank"`

	// Traffic counters, from internal/comm's Stats (not duplicated in
	// Counters; see the package comment).
	MsgsSent    int64 `json:"msgsSent"`
	MsgsRecvd   int64 `json:"msgsRecvd"`
	BytesSent   int64 `json:"bytesSent"`
	BytesRecvd  int64 `json:"bytesRecvd"`
	Collectives int64 `json:"collectives"`

	// Counters is indexed by Counter; len is NumCounters (shorter
	// slices read as zero, so old snapshots stay decodable).
	Counters []int64 `json:"counters"`

	// HaloLevelBytes[j] is the halo payload volume the rank sent for
	// DP level j.
	HaloLevelBytes []int64 `json:"haloLevelBytes,omitempty"`

	// Hists holds the rank's latency histograms, indexed by HistID
	// when taken from a live Recorder (all NumHists entries, empty
	// families included so exporters see a stable set). Merge by Name
	// — Totals does — when snapshot provenance is mixed.
	Hists []HistSnapshot `json:"hists,omitempty"`

	Spans []Span `json:"spans"`

	// SpansRecorded is the recorder's span-buffer length at snapshot
	// time — equal to len(Spans) for a full Snapshot, and still
	// populated by LiteSnapshot, which omits the buffer itself.
	SpansRecorded int `json:"spansRecorded,omitempty"`

	// Flows holds the rank's message-flow endpoints for cross-rank
	// trace stitching (not merged by Totals, like Spans).
	Flows []Flow `json:"flows,omitempty"`

	// Phase is the rank's phase label at snapshot time ("" if never
	// set) — the live /healthz progress field.
	Phase string `json:"phase,omitempty"`

	// ProcName, when non-empty, overrides the trace exporter's default
	// "rank N" process label for this snapshot's pid lane — synthesized
	// snapshots (the serving layer's query lane) name themselves here.
	ProcName string `json:"procName,omitempty"`

	// End is the rank's time-base reading at snapshot (virtual seconds
	// for distributed ranks — the rank's share of the modeled
	// makespan — wall seconds for sequential runs).
	End float64 `json:"end"`
}

// Counter returns counter c from the snapshot (0 when absent).
func (s Snapshot) Counter(c Counter) int64 {
	if int(c) < len(s.Counters) {
		return s.Counters[c]
	}
	return 0
}

// Hist returns the named histogram from the snapshot (an empty
// histogram when absent).
func (s Snapshot) Hist(name string) HistSnapshot {
	for _, h := range s.Hists {
		if h.Name == name {
			return h
		}
	}
	return HistSnapshot{Name: name}
}

// Totals aggregates snapshots across ranks: counters, traffic, and
// per-level halo volumes sum; histograms merge by name; End takes the
// maximum (the makespan of the snapshot set); spans and flows are not
// merged (Rank is -1 in the result).
func Totals(snaps ...Snapshot) Snapshot {
	out := Snapshot{Rank: -1, Counters: make([]int64, NumCounters)}
	for _, s := range snaps {
		out.MsgsSent += s.MsgsSent
		out.MsgsRecvd += s.MsgsRecvd
		out.BytesSent += s.BytesSent
		out.BytesRecvd += s.BytesRecvd
		out.Collectives += s.Collectives
		for c := Counter(0); c < NumCounters; c++ {
			out.Counters[c] += s.Counter(c)
		}
		for j, b := range s.HaloLevelBytes {
			for len(out.HaloLevelBytes) <= j {
				out.HaloLevelBytes = append(out.HaloLevelBytes, 0)
			}
			out.HaloLevelBytes[j] += b
		}
		out.Hists = MergeHists(out.Hists, s.Hists)
		if s.End > out.End {
			out.End = s.End
		}
	}
	return out
}

// CategorySeconds sums span durations by category for one rank.
// Nested spans each contribute their full extent (a phase contains its
// levels; the categories are a hierarchy, not a partition — see
// docs/OBSERVABILITY.md).
func (s Snapshot) CategorySeconds() map[string]float64 {
	out := make(map[string]float64)
	for _, sp := range s.Spans {
		out[sp.Cat] += sp.Dur
	}
	return out
}

// Cached small-index span names, so hot instrumentation sites do not
// allocate. Indices beyond the cache fall back to fmt-free manual
// formatting via itoa (still allocating only for the rare big index).
const nameCache = 64

var (
	levelNames [nameCache]string
	phaseNames [nameCache]string
	roundNames [nameCache]string
	haloNames  [nameCache]string
)

func init() {
	for i := 0; i < nameCache; i++ {
		levelNames[i] = "L" + itoa(i)
		phaseNames[i] = "phase " + itoa(i)
		roundNames[i] = "round " + itoa(i)
		haloNames[i] = "halo L" + itoa(i)
	}
}

// itoa is a minimal strconv.Itoa (kept local so the hot-path helpers
// stay obviously allocation-free for cached indices).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

// LevelName returns the span name for DP level j ("L3").
func LevelName(j int) string {
	if j >= 0 && j < nameCache {
		return levelNames[j]
	}
	return "L" + itoa(j)
}

// PhaseName returns the span name for phase index p ("phase 7").
func PhaseName(p int) string {
	if p >= 0 && p < nameCache {
		return phaseNames[p]
	}
	return "phase " + itoa(p)
}

// RoundName returns the span name for amplification round r.
func RoundName(r int) string {
	if r >= 0 && r < nameCache {
		return roundNames[r]
	}
	return "round " + itoa(r)
}

// HaloName returns the span name for the halo exchange of DP level j.
func HaloName(j int) string {
	if j >= 0 && j < nameCache {
		return haloNames[j]
	}
	return "halo L" + itoa(j)
}
