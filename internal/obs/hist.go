package obs

// Log-bucketed latency histograms, HDR-histogram style: a fixed array
// of buckets whose upper bounds grow geometrically (4 sub-buckets per
// octave, so bucket widths stay within ~19% relative error), covering
// one nanosecond to about three days of seconds-denominated latency.
// Observe is allocation-free and O(1); the serializable HistSnapshot
// form is sparse (only non-empty buckets travel) and merges
// associatively and commutatively, so cross-rank gathers can fold
// snapshots in any tree order and arrive at the same distribution —
// the property TestHistMergeAssociative pins.

import (
	"math"
	"sort"
)

// HistID identifies one typed per-rank latency histogram. Histograms
// record distributions of durations in seconds, in the rank's span
// time base (virtual seconds for distributed ranks, wall seconds for
// sequential ones) — except HistRetryBackoff for TCP, which is wall
// time (see docs/OBSERVABILITY.md).
type HistID uint8

// The histogram set. NumHists bounds the array; new histograms must be
// appended (snapshots index by value) and named in histNames.
const (
	// HistSendLatency is the modeled per-message cost of each send:
	// Alpha + Beta·bytes under the world's CostModel (zero when the
	// zero CostModel is in use).
	HistSendLatency HistID = iota
	// HistRecvWait is the time a Recv advanced the receiver's clock —
	// the receiver-side wait for the message to arrive under the α–β
	// model (zero when the message had already arrived).
	HistRecvWait
	// HistBarrierWait is the time each Barrier cost the rank: the jump
	// to the group maximum plus the modeled tree latency. Its spread
	// across ranks is the barrier skew.
	HistBarrierWait
	// HistHaloExchange is the duration of each per-level halo exchange
	// in internal/core (sends plus receives, one observation per level
	// per phase step).
	HistHaloExchange
	// HistRetryBackoff is the backoff slept before each send retry
	// (fault-injected drops in virtual time, TCP write failures in
	// wall time) — the distribution behind the BackoffNanos counter.
	HistRetryBackoff
	// HistServeQueueWait is the wall time a served query spent in the
	// admission queue before a worker picked it up (internal/serve).
	HistServeQueueWait
	// HistServeQueryLatency is the wall time from a served query's
	// admission to its terminal state — queueing, execution (or cache /
	// singleflight attach), and result publication (internal/serve).
	HistServeQueryLatency
	// HistServeBatchOccupancy is the lane count of each batched DP
	// execution the admission window assembled (internal/serve). Note
	// the unit caveat: histograms export under a `_seconds` suffix for
	// uniformity, but this one observes a dimensionless lane count.
	HistServeBatchOccupancy
	// HistServeLaneCost is the per-query amortized execution time of a
	// batched flight: the batch's wall time divided by its occupancy,
	// observed once per lane (internal/serve).
	HistServeLaneCost
	// HistServeDPTime is the wall time each flight-leading query spent
	// executing its DP — the dp stage of its QueryTrace, excluding
	// queueing and result publication (internal/serve).
	HistServeDPTime
	// HistServeBatchAssembly is the wall time a batch leader spent
	// holding the admission window collecting compatible lanes before
	// executing (internal/serve; zero observations with batching off).
	HistServeBatchAssembly
	// HistStoreColdStart is the wall time to bring a stored graph from
	// disk to query-ready: open, header validation, and mmap of the
	// repository file (internal/store; a resident re-acquire observes
	// nothing — that is a store hit).
	HistStoreColdStart
	// HistClusterForward is the wall time of each forwarded query's
	// proxy round trip to a shard owner, as seen by the fronting
	// replica (internal/cluster).
	HistClusterForward
	// HistClusterHandoff is the wall time of each shard handoff: pull
	// the sealed v2 graph file plus its partition artifacts from a
	// peer, land them in the local store, and register the graph
	// (internal/cluster).
	HistClusterHandoff

	// NumHists is the number of defined histograms.
	NumHists
)

var histNames = [NumHists]string{
	"send-latency", "recv-wait", "barrier-wait", "halo-exchange", "retry-backoff",
	"serve-queue-wait", "serve-query-latency",
	"serve-batch-occupancy", "serve-lane-cost",
	"serve-dp-time", "serve-batch-assembly",
	"store-cold-start",
	"cluster-forward", "cluster-handoff",
}

// String returns the stable kebab-case name used by the exporters.
func (h HistID) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "hist-?"
}

// Bucket geometry. histMinValue is the upper bound of bucket 0; each
// subsequent bucket's bound grows by 2^(1/histSubPerOctave). 192
// buckets at 4 per octave span 48 octaves: 1 ns … ~2.8e5 s.
const (
	histMinValue     = 1e-9
	histSubPerOctave = 4
	histBuckets      = 192
)

// histBounds[i] is the inclusive upper bound of bucket i, precomputed
// so Observe, the exporters and the quantile walk agree exactly.
var histBounds [histBuckets]float64

func init() {
	for i := 0; i < histBuckets; i++ {
		histBounds[i] = histMinValue * math.Pow(2, float64(i)/histSubPerOctave)
	}
}

// HistUpperBound returns the inclusive upper bound of bucket i in
// seconds (+Inf for the last bucket, which absorbs all larger values).
func HistUpperBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	if i < 0 {
		i = 0
	}
	return histBounds[i]
}

// histBucketOf maps a value in seconds to its bucket index.
func histBucketOf(v float64) int {
	if v <= histMinValue || math.IsNaN(v) {
		return 0
	}
	f := math.Ceil(math.Log2(v/histMinValue) * histSubPerOctave)
	if f >= histBuckets-1 { // the float comparison also absorbs +Inf
		return histBuckets - 1
	}
	return int(f)
}

// Hist is the in-recorder histogram: fixed-size, allocation-free to
// observe into. The zero value is an empty histogram.
type Hist struct {
	counts [histBuckets]int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// observe records v (seconds). Negative values clamp to zero.
func (h *Hist) observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[histBucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// snapshot freezes the histogram into its sparse serializable form.
func (h *Hist) snapshot(name string) HistSnapshot {
	out := HistSnapshot{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.counts {
		if n != 0 {
			out.Bucket = append(out.Bucket, i)
			out.N = append(out.N, n)
		}
	}
	return out
}

// reset empties the histogram.
func (h *Hist) reset() { *h = Hist{} }

// HistSnapshot is the serializable, mergeable form of one histogram:
// sparse parallel arrays of non-empty bucket indices (ascending) and
// their counts, plus the exact count/sum/min/max. All values are
// seconds.
type HistSnapshot struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	// Bucket[j] is a bucket index (see HistUpperBound); N[j] its count.
	Bucket []int   `json:"bucket,omitempty"`
	N      []int64 `json:"n,omitempty"`
}

// Merge combines two histogram distributions. The operation is
// associative and commutative — fold snapshots gathered from any
// number of ranks in any order — and never aliases its inputs' slices.
// An empty side yields a copy of the other (keeping a's Name when both
// are named).
func (a HistSnapshot) Merge(b HistSnapshot) HistSnapshot {
	name := a.Name
	if name == "" {
		name = b.Name
	}
	if a.Count == 0 && b.Count == 0 {
		return HistSnapshot{Name: name}
	}
	if a.Count == 0 {
		out := b
		out.Name = name
		out.Bucket = append([]int(nil), b.Bucket...)
		out.N = append([]int64(nil), b.N...)
		return out
	}
	if b.Count == 0 {
		out := a
		out.Name = name
		out.Bucket = append([]int(nil), a.Bucket...)
		out.N = append([]int64(nil), a.N...)
		return out
	}
	out := HistSnapshot{
		Name:  name,
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
	}
	// Merge the two sorted sparse arrays.
	i, j := 0, 0
	for i < len(a.Bucket) || j < len(b.Bucket) {
		switch {
		case j >= len(b.Bucket) || (i < len(a.Bucket) && a.Bucket[i] < b.Bucket[j]):
			out.Bucket = append(out.Bucket, a.Bucket[i])
			out.N = append(out.N, a.N[i])
			i++
		case i >= len(a.Bucket) || b.Bucket[j] < a.Bucket[i]:
			out.Bucket = append(out.Bucket, b.Bucket[j])
			out.N = append(out.N, b.N[j])
			j++
		default: // same bucket index
			out.Bucket = append(out.Bucket, a.Bucket[i])
			out.N = append(out.N, a.N[i]+b.N[j])
			i++
			j++
		}
	}
	return out
}

// Quantile returns an estimate of the p-quantile (p in [0,1]) in
// seconds: the upper bound of the bucket holding the p·Count-th
// observation, clamped to the exact observed [Min, Max]. Returns 0 on
// an empty histogram. Quantile(0) is Min and Quantile(1) is Max
// exactly; intermediate quantiles carry the ~19% bucket resolution.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min
	}
	if p >= 1 {
		return s.Max
	}
	target := int64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for j, idx := range s.Bucket {
		cum += s.N[j]
		if cum >= target {
			v := HistUpperBound(idx)
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}

// Mean returns the exact arithmetic mean (0 on an empty histogram).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Cumulative returns (upper bound, cumulative count) pairs for the
// Prometheus exposition: one pair per non-empty bucket, bounds
// ascending, counts non-decreasing. The +Inf bucket is the caller's
// (its cumulative count is Count).
func (s HistSnapshot) Cumulative() (bounds []float64, cum []int64) {
	var c int64
	for j, idx := range s.Bucket {
		c += s.N[j]
		if b := HistUpperBound(idx); !math.IsInf(b, 1) {
			bounds = append(bounds, b)
			cum = append(cum, c)
		}
	}
	return bounds, cum
}

// MergeHists folds two snapshot histogram lists by name (the form
// Snapshot.Hists travels in). The result is sorted by name; either
// side may be nil.
func MergeHists(a, b []HistSnapshot) []HistSnapshot {
	byName := make(map[string]HistSnapshot, len(a)+len(b))
	for _, h := range a {
		byName[h.Name] = byName[h.Name].Merge(h)
	}
	for _, h := range b {
		byName[h.Name] = byName[h.Name].Merge(h)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]HistSnapshot, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out
}
