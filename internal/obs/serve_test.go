package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func testServer(t *testing.T) (*Server, *Recorder) {
	t.Helper()
	fc := &fakeClock{}
	rec := NewRecorder(0, fc.now)
	fc.t = 0.5
	rec.Add(DPOps, 1234)
	rec.Add(Rounds, 1)
	rec.SetPhaseLabel("phase 3")
	rec.Observe(HistSendLatency, 1.5e-6)
	rec.Observe(HistSendLatency, 4e-6)
	rec.Observe(HistRecvWait, 2e-4)
	rec.Observe(HistBarrierWait, 1e-3)
	rec.Observe(HistHaloExchange, 5e-4)
	rec.Begin("round 0", "round")
	srv, err := Serve("127.0.0.1:0", SnapshotSource(rec))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, rec
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// promSampleRe matches one Prometheus text-format sample line.
var promSampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-Inf|NaN|[0-9eE+.\-]+)$`)

// TestMetricsExpositionValid checks the /metrics output against the
// Prometheus text-format contract: every non-comment line parses as a
// sample, every metric is preceded by a TYPE comment, and histogram
// series have ascending le bounds, non-decreasing cumulative buckets,
// a +Inf bucket, and bucket/count agreement.
func TestMetricsExpositionValid(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	typed := map[string]string{} // metric family -> TYPE
	type histState struct {
		lastLe  float64
		lastCum int64
		infSeen bool
		inf     int64
		count   int64
	}
	hists := map[string]*histState{} // per family+rank series
	var histFamilies int
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			if parts[3] == "histogram" {
				histFamilies++
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("line is not a valid Prometheus sample: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE comment", line)
		}
		if typed[base] != "histogram" {
			continue
		}
		rank := "?"
		if m := regexp.MustCompile(`rank="([^"]*)"`).FindStringSubmatch(line); m != nil {
			rank = m[1]
		}
		key := base + "/" + rank
		st := hists[key]
		if st == nil {
			st = &histState{lastLe: -1}
			hists[key] = st
		}
		valStr := line[strings.LastIndex(line, " ")+1:]
		switch {
		case strings.HasPrefix(name, base+"_bucket"):
			m := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bucket without le label: %q", line)
			}
			var le float64
			if m[1] == "+Inf" {
				le = 1e308
				st.infSeen = true
				st.inf, _ = strconv.ParseInt(valStr, 10, 64)
			} else {
				var err error
				le, err = strconv.ParseFloat(m[1], 64)
				if err != nil {
					t.Fatalf("unparseable le %q", m[1])
				}
			}
			if le <= st.lastLe {
				t.Fatalf("le bounds not ascending in %s: %g after %g", key, le, st.lastLe)
			}
			st.lastLe = le
			cum, _ := strconv.ParseInt(valStr, 10, 64)
			if cum < st.lastCum {
				t.Fatalf("cumulative bucket decreases in %s: %q", key, line)
			}
			st.lastCum = cum
		case name == base+"_count":
			st.count, _ = strconv.ParseInt(valStr, 10, 64)
		}
	}
	if histFamilies < 4 {
		t.Fatalf("want at least 4 histogram families, got %d", histFamilies)
	}
	for key, st := range hists {
		if !st.infSeen {
			t.Fatalf("histogram series %s has no +Inf bucket", key)
		}
		if st.inf != st.count {
			t.Fatalf("histogram series %s: +Inf bucket %d != count %d", key, st.inf, st.count)
		}
	}
	// Spot-check a counter value made it through.
	if !strings.Contains(body, `midas_dp_ops_total{rank="0"} 1234`) {
		t.Fatalf("dp-ops counter missing from exposition:\n%s", body)
	}
}

func TestHealthzReportsProgress(t *testing.T) {
	srv, rec := testServer(t)
	code, body := get(t, "http://"+srv.Addr()+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz status %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || len(h.Ranks) != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	r0 := h.Ranks[0]
	if r0.Rank != 0 || r0.Phase != "phase 3" || r0.Rounds != 1 || r0.ClockSecs != 0.5 || r0.Spans != 1 {
		t.Fatalf("rank health = %+v", r0)
	}
	rec.End()
}

func TestPprofServed(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d body %q", code, body)
	}
	code, _ = get(t, "http://"+srv.Addr()+"/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("pprof cmdline status %d", code)
	}
}

// TestServeWhileRecording hammers the endpoint from HTTP while the
// "rank goroutine" keeps mutating the recorder — the concurrency
// contract the live telemetry plane needs (run under -race via make
// race).
func TestServeWhileRecording(t *testing.T) {
	rec := NewRecorder(0, func() float64 { return 0 })
	srv, err := Serve("127.0.0.1:0", SnapshotSource(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			rec.Add(DPOps, 1)
			rec.Observe(HistRecvWait, 1e-6)
			rec.FlowSend(0, 1, 1)
			rec.Begin("round 0", "round")
			rec.SetPhaseLabel("spin")
			rec.End()
		}
	}()
	for i := 0; i < 20; i++ {
		if code, _ := get(t, "http://"+srv.Addr()+"/metrics"); code != 200 {
			t.Fatalf("metrics status %d", code)
		}
		if code, _ := get(t, "http://"+srv.Addr()+"/healthz"); code != 200 {
			t.Fatalf("healthz status %d", code)
		}
	}
	<-done
	if got := rec.Get(DPOps); got != 500 {
		t.Fatalf("DPOps = %d, want 500", got)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("definitely:not:an:addr", nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
