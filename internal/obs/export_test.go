package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenSnapshots builds a small deterministic two-rank run.
func goldenSnapshots() []Snapshot {
	snaps := make([]Snapshot, 2)
	for rank := 0; rank < 2; rank++ {
		fc := &fakeClock{}
		r := NewRecorder(rank, fc.now)
		fc.t = 0
		r.Begin(RoundName(0), "round")
		fc.t = 0.001 * float64(rank)
		r.Begin(PhaseName(0), "phase")
		fc.t += 0.002
		r.Begin(LevelName(2), "level")
		r.Add(DPOps, int64(1000*(rank+1)))
		r.Add(Levels, 1)
		fc.t += 0.003
		r.Begin(HaloName(2), "halo")
		r.Add(HaloMsgs, 2)
		r.Add(HaloBytes, 256)
		r.AddHaloLevel(2, 256)
		// One message flows rank 0 → rank 1: both endpoints derive the
		// same flow id, so the trace exporter can stitch them.
		if rank == 0 {
			r.Observe(HistSendLatency, 1.5e-6)
			r.FlowSend(0, 1, 7)
		} else {
			r.Observe(HistRecvWait, 2.5e-4)
			r.FlowRecv(0, 1, 7)
		}
		fc.t += 0.0005
		r.Observe(HistHaloExchange, 0.0005)
		r.End() // halo
		r.End() // level
		fc.t += 0.001
		r.End() // phase
		r.Add(Rounds, 1)
		r.Add(Phases, 1)
		fc.t = 0.01
		r.End() // round
		s := r.Snapshot()
		s.MsgsSent = int64(4 + rank)
		s.MsgsRecvd = int64(4 + rank)
		s.BytesSent = 512
		s.BytesRecvd = 512
		s.Collectives = 3
		snaps[rank] = s
	}
	return snaps
}

func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenSnapshots()...); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSON drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteTraceIsLoadableChromeFormat checks the structural contract
// chrome://tracing relies on, independent of golden-file drift.
func TestWriteTraceIsLoadableChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, goldenSnapshots()...); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	phases := map[string]int{}
	type flowEnd struct {
		pid float64
		id  string
	}
	var sends, recvs []flowEnd
	for _, ev := range tf.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "M":
			if ev["name"] != "process_name" {
				t.Fatalf("unexpected metadata event: %v", ev)
			}
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event without numeric ts: %v", ev)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("X event without numeric dur: %v", ev)
			}
		case "s", "f":
			id, _ := ev["id"].(string)
			if id == "" {
				t.Fatalf("flow event without id: %v", ev)
			}
			pid, _ := ev["pid"].(float64)
			if ph == "s" {
				sends = append(sends, flowEnd{pid, id})
			} else {
				if ev["bp"] != "e" {
					t.Fatalf("flow finish without bp=e: %v", ev)
				}
				recvs = append(recvs, flowEnd{pid, id})
			}
		default:
			t.Fatalf("unexpected event phase %q", ph)
		}
	}
	if phases["M"] != 2 { // one process_name per rank
		t.Fatalf("want 2 metadata events, got %d", phases["M"])
	}
	if phases["X"] != 8 { // 4 spans per rank (round > phase > level > halo)
		t.Fatalf("want 8 span events, got %d", phases["X"])
	}
	// The fixture's one rank 0 → rank 1 message must stitch: matching
	// ids on distinct pids.
	if len(sends) != 1 || len(recvs) != 1 {
		t.Fatalf("want 1 flow send + 1 flow finish, got %d + %d", len(sends), len(recvs))
	}
	if sends[0].id != recvs[0].id {
		t.Fatalf("flow ids do not match: send %q recv %q", sends[0].id, recvs[0].id)
	}
	if sends[0].pid == recvs[0].pid {
		t.Fatalf("flow endpoints share pid %v; want distinct processes", sends[0].pid)
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, goldenSnapshots()...); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"per-rank counters", "msgs-sent", "dp-ops",
		"total", "time by span category", "halo", "level", "round",
		"halo volume by DP level", "L2", "512",
		"latency histograms", "halo-exchange", "recv-wait", "send-latency", "p99",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// Totals row: 4+5 messages.
	if !strings.Contains(out, "9") {
		t.Fatalf("summary missing aggregated message count:\n%s", out)
	}
}

// TestWriteSummaryGolden pins the summary byte-for-byte: every section
// is emitted in deterministic sorted order, so repeated runs and CI
// diffs are stable. Regenerate with -update-golden after intentional
// format changes.
func TestWriteSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, goldenSnapshots()...); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "summary_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("summary drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Determinism: a second render is byte-identical.
	var again bytes.Buffer
	if err := WriteSummary(&again, goldenSnapshots()...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("summary output is not deterministic across renders")
	}
}

func TestWriteSummaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no snapshots") {
		t.Fatalf("empty summary output: %q", buf.String())
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	in := goldenSnapshots()[1]
	b, err := EncodeSnapshot(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rank != in.Rank || out.MsgsSent != in.MsgsSent || out.End != in.End ||
		len(out.Spans) != len(in.Spans) || out.Counter(DPOps) != in.Counter(DPOps) {
		t.Fatalf("round trip lost data:\nin:  %+v\nout: %+v", in, out)
	}
	if _, err := DecodeSnapshot([]byte("{not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}
