package obs

// Edge cases of HistSnapshot.Merge and Quantile beyond the random
// associativity properties in hist_test.go: disjoint sparse bucket
// sets, empty-into-nonempty copies, and quantile clamping in the top
// (+Inf-bounded) octave.

import (
	"math"
	"testing"
)

// sparse builds a snapshot directly from (bucket, count) pairs with
// the given exact stats, bypassing observe — the form a deserialized
// cross-rank gather arrives in.
func sparse(name string, min, max float64, pairs ...int64) HistSnapshot {
	s := HistSnapshot{Name: name, Min: min, Max: max}
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Bucket = append(s.Bucket, int(pairs[i]))
		s.N = append(s.N, pairs[i+1])
		s.Count += pairs[i+1]
		s.Sum += float64(pairs[i+1]) * HistUpperBound(int(pairs[i])) / 2
	}
	return s
}

func TestHistMergeDisjointSparseBuckets(t *testing.T) {
	// a occupies even-ish low buckets, b strictly higher ones; the merge
	// must interleave in ascending bucket order with no coalescing.
	a := sparse("lat", 1e-9, 1e-6, 2, 5, 10, 3, 40, 1)
	b := sparse("lat", 1e-4, 1e-2, 5, 7, 20, 2, 80, 4)
	m := a.Merge(b)
	wantBuckets := []int{2, 5, 10, 20, 40, 80}
	wantN := []int64{5, 7, 3, 2, 1, 4}
	if len(m.Bucket) != len(wantBuckets) {
		t.Fatalf("merged bucket count %d, want %d", len(m.Bucket), len(wantBuckets))
	}
	for i := range wantBuckets {
		if m.Bucket[i] != wantBuckets[i] || m.N[i] != wantN[i] {
			t.Fatalf("merged[%d] = (%d, %d), want (%d, %d)", i, m.Bucket[i], m.N[i], wantBuckets[i], wantN[i])
		}
	}
	if m.Count != a.Count+b.Count {
		t.Fatalf("merged count %d, want %d", m.Count, a.Count+b.Count)
	}
	if m.Min != 1e-9 || m.Max != 1e-2 {
		t.Fatalf("merged min/max = %g/%g, want 1e-9/1e-2", m.Min, m.Max)
	}
	// Symmetric order produces the identical distribution.
	if !histEq(m, b.Merge(a)) {
		t.Fatal("disjoint merge is not commutative")
	}
}

func TestHistMergeEmptyIntoNonempty(t *testing.T) {
	full := sparse("queue-wait", 1e-6, 1e-3, 8, 3, 16, 9)
	empty := HistSnapshot{Name: "other"}

	for _, tc := range []struct {
		name string
		got  HistSnapshot
		want string // expected merged Name
	}{
		{"nonempty.Merge(empty)", full.Merge(empty), "queue-wait"},
		{"empty.Merge(nonempty)", empty.Merge(full), "other"}, // a's name wins when set
		{"unnamed-empty.Merge(nonempty)", HistSnapshot{}.Merge(full), "queue-wait"},
	} {
		if tc.got.Name != tc.want {
			t.Errorf("%s: name %q, want %q", tc.name, tc.got.Name, tc.want)
		}
		if tc.got.Count != full.Count || tc.got.Sum != full.Sum || tc.got.Min != full.Min || tc.got.Max != full.Max {
			t.Errorf("%s: stats %+v do not match the nonempty side", tc.name, tc.got)
		}
		if len(tc.got.Bucket) != 2 || tc.got.Bucket[0] != 8 || tc.got.N[1] != 9 {
			t.Errorf("%s: buckets %v/%v, want the nonempty side's", tc.name, tc.got.Bucket, tc.got.N)
		}
		// The merge must copy, never alias: mutating the result cannot
		// reach back into the input's slices.
		if len(tc.got.Bucket) > 0 {
			tc.got.Bucket[0] = -1
			tc.got.N[0] = -1
			if full.Bucket[0] == -1 || full.N[0] == -1 {
				t.Fatalf("%s: merged snapshot aliases the input's slices", tc.name)
			}
			if empty.Bucket != nil {
				t.Fatalf("%s: empty input grew buckets", tc.name)
			}
		}
	}

	// Both-empty merge is a named empty snapshot.
	both := HistSnapshot{Name: "a"}.Merge(HistSnapshot{Name: "b"})
	if both.Name != "a" || both.Count != 0 || both.Bucket != nil {
		t.Fatalf("empty.Merge(empty) = %+v, want named empty", both)
	}
}

func TestHistQuantileClampsAtTopOctave(t *testing.T) {
	// All mass in the last bucket, whose upper bound is +Inf: every
	// quantile must clamp to the exact observed Max, never report Inf.
	var h Hist
	vals := []float64{4e5, 7e5, 9.5e5} // all above the ~2.8e5 s range
	for _, v := range vals {
		h.observe(v)
	}
	s := h.snapshot("top")
	if len(s.Bucket) != 1 || s.Bucket[0] != histBuckets-1 {
		t.Fatalf("values did not all land in the overflow bucket: %v", s.Bucket)
	}
	if !math.IsInf(HistUpperBound(s.Bucket[0]), 1) {
		t.Fatal("overflow bucket bound is not +Inf")
	}
	for _, p := range []float64{0.01, 0.5, 0.99, 1} {
		if q := s.Quantile(p); q != 9.5e5 {
			t.Fatalf("Quantile(%g) = %g, want the exact Max 9.5e5", p, q)
		}
	}
	if q := s.Quantile(0); q != 4e5 {
		t.Fatalf("Quantile(0) = %g, want the exact Min 4e5", q)
	}

	// A merge whose p-th bucket is the overflow bucket clamps the same
	// way.
	low := sparse("top", 2.5, 3, 140, 10) // bucket 140 bound ≈ 34.4 s > Max ⇒ clamp down
	m := low.Merge(s)
	if q := m.Quantile(0.99); q != 9.5e5 {
		t.Fatalf("merged Quantile(0.99) = %g, want clamped Max", q)
	}
	if q := low.Quantile(0.5); q != 3 {
		t.Fatalf("Quantile in a bucket wider than [Min,Max] = %g, want clamped Max 3", q)
	}
	// And when a bucket's bound sits below the exact Min (possible in a
	// deserialized snapshot), the quantile clamps up to Min instead.
	under := sparse("top", 2.5, 3, 100, 10) // bucket 100 bound ≈ 33.6 ms < Min ⇒ clamp up
	if q := under.Quantile(0.5); q != 2.5 {
		t.Fatalf("Quantile below [Min,Max] = %g, want clamped Min 2.5", q)
	}
}
