package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers. Run as seed-corpus regression tests
// under `go test`, or explore with `go test -fuzz=FuzzReadEdgeList`.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n5 5\n2 9\n")
	f.Add("not numbers\n")
	f.Add("-3 4\n")
	f.Add("4294967296 1\n") // overflows int32
	f.Add("0 1 extra tokens are ok\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Accepted graphs must satisfy the CSR invariants.
		n := g.NumVertices()
		for v := int32(0); v < int32(n); v++ {
			nbr := g.Neighbors(v)
			for i, u := range nbr {
				if u < 0 || int(u) >= n {
					t.Fatalf("adjacency out of range: %d", u)
				}
				if u == v {
					t.Fatal("self loop survived")
				}
				if i > 0 && nbr[i-1] >= u {
					t.Fatal("adjacency not strictly sorted")
				}
				if !g.HasEdge(u, v) {
					t.Fatal("asymmetric edge")
				}
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// seed with a valid file and some mutations
	var buf bytes.Buffer
	if err := WriteBinary(&buf, RandomGNM(10, 20, 1)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("GARBAGEGARBAGEGARBAGE"))
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// structural invariants on acceptance
		n := g.NumVertices()
		for v := int32(0); v < int32(n); v++ {
			for _, u := range g.Neighbors(v) {
				if u < 0 || int(u) >= n {
					t.Fatalf("adjacency out of range: %d", u)
				}
			}
		}
	})
}

func FuzzReadWeights(f *testing.F) {
	f.Add("0 5\n1 2 3\n")
	f.Add("bad\n")
	f.Add("99 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g := Path(4)
		if err := ReadWeights(strings.NewReader(input), g); err != nil {
			return
		}
		if len(g.Weights()) != 4 {
			t.Fatal("accepted weights with wrong length")
		}
	})
}
