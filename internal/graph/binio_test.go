package graph

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"
)

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
		if a.Weight(v) != b.Weight(v) || a.Baseline(v) != b.Baseline(v) {
			t.Fatalf("weight/baseline mismatch at %d", v)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := RandomGNM(200, 800, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestBinaryRoundTripWithWeights(t *testing.T) {
	g := Cycle(10)
	g.SetWeights([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	g.SetBaselines([]int64{2, 2, 2, 2, 2, 1, 1, 1, 1, 1})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
	if !g2.Weighted() {
		t.Fatal("weights flag lost")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := Path(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// bad magic
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// bad version
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// truncation at every prefix must error, never panic
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncated file (%d bytes) accepted", cut)
		}
	}
	// out-of-range adjacency entry
	bad = append([]byte(nil), good...)
	// adjacency starts after 3*4 + 2*8 header + (n+1)*8 offsets
	adjOff := 12 + 16 + 6*8
	binary.LittleEndian.PutUint32(bad[adjOff:], 999)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range adjacency accepted")
	}
}

func TestLoadSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	g := RandomGNM(50, 120, 3)

	binPath := filepath.Join(dir, "g.bin")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	txtPath := filepath.Join(dir, "g.txt")
	if err := SaveEdgeList(txtPath, g); err != nil {
		t.Fatal(err)
	}
	fromBin, err := Load(binPath)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := Load(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, fromBin, fromTxt)
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func BenchmarkBinaryLoad(b *testing.B) {
	g := RandomGNM(5000, 40000, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTextLoad(b *testing.B) {
	g := RandomGNM(5000, 40000, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadEdgeList(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
