package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"
)

// Version-2 binary layout: the mmap-servable format behind
// internal/store. Every array the DP loops touch lives in its own
// 64-byte-aligned section described by a section table, so a mapped
// file's bytes ARE the CSR arrays — MapBinaryV2 wraps them in a Graph
// without copying a single edge. All integers little-endian.
//
//	header (64 bytes):
//	  0  magic        u32 = "MIDG"
//	  4  version      u32 = 2
//	  8  flags        u32 (bit 0 weights, bit 1 baselines, bit 2 labels)
//	  12 sectionCount u32
//	  16 n            u64
//	  24 halfEdges    u64
//	  32 tableOff     u64 (= 64)
//	  40 tableLen     u64 (= sectionCount * 32)
//	  48 headerCRC    u32 — CRC-32C of header[0:48] ++ section table
//	  52 reserved     12 zero bytes
//	section table entry (32 bytes each):
//	  0  id       u32 (1 offsets, 2 adj, 3 weights, 4 base, 5 labels)
//	  8  elemSize u32 (bytes per element: 8 or 4)
//	  8  off      u64 (absolute file offset, 64-byte aligned)
//	  16 len      u64 (section length in bytes)
//	  24 crc      u32 — CRC-32C of the section's bytes
//	  28 reserved u32 zero
//	sections, each padded to the next 64-byte boundary
//
// The header checksum makes truncation and table corruption loud at
// open time in O(header) work; the per-section checksums make silent
// data corruption detectable by VerifyBinaryV2 (an explicit O(bytes)
// pass — deliberately not paid on every open, or mapping would fault
// in every page and defeat lazy residency). docs/STORAGE.md covers the
// crash-safety model.
const (
	v2Align       = 64
	v2HeaderLen   = 64
	v2SecEntryLen = 32
	v2MaxSections = 16
)

// Section ids. Required: offsets, adj. Optional by flag: weights,
// base, labels.
const (
	SecOffsets uint32 = 1
	SecAdj     uint32 = 2
	SecWeights uint32 = 3
	SecBase    uint32 = 4
	SecLabels  uint32 = 5
)

var secNames = map[uint32]string{
	SecOffsets: "offsets", SecAdj: "adj", SecWeights: "weights",
	SecBase: "base", SecLabels: "labels",
}

// SectionName returns the human name of a section id ("sec-7" for
// unknown ids).
func SectionName(id uint32) string {
	if n, ok := secNames[id]; ok {
		return n
	}
	return fmt.Sprintf("sec-%d", id)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FormatError describes a structurally invalid or corrupt binary
// graph. Every open/verify failure is one of these (wrapped), never a
// panic — corrupt stores must fail loudly and recoverably.
type FormatError struct {
	Section string // offending section name, "" for header/table faults
	Reason  string
}

func (e *FormatError) Error() string {
	if e.Section == "" {
		return "graph: v2 format: " + e.Reason
	}
	return fmt.Sprintf("graph: v2 section %s: %s", e.Section, e.Reason)
}

func formatErrf(section, format string, args ...any) error {
	return &FormatError{Section: section, Reason: fmt.Sprintf(format, args...)}
}

// V2Section is one section-table entry, as parsed.
type V2Section struct {
	ID   uint32
	Elem uint32 // element width in bytes
	Off  uint64 // absolute offset, v2Align-aligned
	Len  uint64 // bytes
	CRC  uint32
}

// V2Info is the parsed header + section table of a version-2 file.
type V2Info struct {
	Flags     uint32
	N         uint64
	HalfEdges uint64
	FileLen   uint64 // minimum file length the table promises
	Sections  []V2Section
}

// Section returns the entry with the given id, if present.
func (i *V2Info) Section(id uint32) (V2Section, bool) {
	for _, s := range i.Sections {
		if s.ID == id {
			return s, true
		}
	}
	return V2Section{}, false
}

// v2Layout plans the sections a graph serializes to, in file order.
func v2Layout(g *Graph) (flags uint32, secs []V2Section) {
	n := uint64(g.NumVertices())
	add := func(id, elem uint32, count uint64) {
		secs = append(secs, V2Section{ID: id, Elem: elem, Len: uint64(elem) * count})
	}
	add(SecOffsets, 8, n+1)
	add(SecAdj, 4, uint64(len(g.adj)))
	if g.weights != nil {
		flags |= 1
		add(SecWeights, 8, n)
	}
	if g.base != nil {
		flags |= 2
		add(SecBase, 8, n)
	}
	if g.labels != nil {
		flags |= 4
		add(SecLabels, 4, n)
	}
	cur := uint64(v2HeaderLen) + uint64(len(secs))*v2SecEntryLen
	for i := range secs {
		cur = alignUp(cur, v2Align)
		secs[i].Off = cur
		cur += secs[i].Len
	}
	return flags, secs
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// sectionData returns the graph array behind a section id as a
// bulk-encode closure plus its raw element slice length.
func (g *Graph) sectionEncode(id uint32, buf []byte, w io.Writer) error {
	switch id {
	case SecOffsets:
		return writeI64s(w, buf, g.offsets)
	case SecAdj:
		return writeI32s(w, buf, g.adj)
	case SecWeights:
		return writeI64s(w, buf, g.weights)
	case SecBase:
		return writeI64s(w, buf, g.base)
	case SecLabels:
		return writeI32s(w, buf, g.labels)
	}
	return formatErrf("", "unknown section id %d", id)
}

// WriteBinaryV2 writes g in the version-2 aligned section layout.
// Section checksums are computed in a first encoding pass, then the
// header, table, and sections stream out sequentially — the writer
// never buffers a whole section.
func WriteBinaryV2(w io.Writer, g *Graph) error {
	flags, secs := v2Layout(g)
	buf := make([]byte, encChunk)
	// Pass 1: per-section CRC-32C over the encoded bytes.
	for i := range secs {
		h := crc32.New(crcTable)
		if err := g.sectionEncode(secs[i].ID, buf, h); err != nil {
			return err
		}
		secs[i].CRC = h.Sum32()
	}
	table := make([]byte, len(secs)*v2SecEntryLen)
	for i, s := range secs {
		e := table[i*v2SecEntryLen:]
		binary.LittleEndian.PutUint32(e[0:], s.ID)
		binary.LittleEndian.PutUint32(e[4:], s.Elem)
		binary.LittleEndian.PutUint64(e[8:], s.Off)
		binary.LittleEndian.PutUint64(e[16:], s.Len)
		binary.LittleEndian.PutUint32(e[24:], s.CRC)
	}
	var hdr [v2HeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], binMagic)
	binary.LittleEndian.PutUint32(hdr[4:], binVersion2)
	binary.LittleEndian.PutUint32(hdr[8:], flags)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(secs)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(g.adj)))
	binary.LittleEndian.PutUint64(hdr[32:], v2HeaderLen)
	binary.LittleEndian.PutUint64(hdr[40:], uint64(len(table)))
	hcrc := crc32.New(crcTable)
	hcrc.Write(hdr[:48])
	hcrc.Write(table)
	binary.LittleEndian.PutUint32(hdr[48:], hcrc.Sum32())

	bw := newCountingWriter(w)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(table); err != nil {
		return err
	}
	// Pass 2: sections with alignment padding.
	var pad [v2Align]byte
	for i := range secs {
		if gap := secs[i].Off - bw.n; gap > 0 {
			if _, err := bw.Write(pad[:gap]); err != nil {
				return err
			}
		}
		if err := g.sectionEncode(secs[i].ID, buf, bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// countingWriter tracks the absolute output offset so the section
// writer can emit alignment padding.
type countingWriter struct {
	w io.Writer
	n uint64
}

func newCountingWriter(w io.Writer) *countingWriter { return &countingWriter{w: w} }

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

func (c *countingWriter) Flush() error {
	if f, ok := c.w.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// SaveBinaryV2 writes a graph to path in the version-2 layout.
func SaveBinaryV2(path string, g *Graph) error {
	return saveWith(path, func(w io.Writer) error { return WriteBinaryV2(w, g) })
}

// V2FileSize reports the exact byte length WriteBinaryV2 will produce
// for g (header + table + aligned sections).
func V2FileSize(g *Graph) int64 {
	_, secs := v2Layout(g)
	last := secs[len(secs)-1]
	return int64(last.Off + last.Len)
}

// ParseV2Header validates the fixed header and section table of a
// version-2 file in O(header) work: magic, version, header checksum,
// section bounds, alignment, element widths, and the exact section
// lengths the (n, halfEdges, flags) triple implies. It reads no
// section data — mapping stays lazy.
func ParseV2Header(data []byte) (*V2Info, error) {
	return parseV2Header(data, uint64(len(data)))
}

// ParseV2HeaderPrefix parses a header + section table from a prefix of
// the file (at least V2HeaderPrefixLen bytes), checking section bounds
// against the stated total file size instead of the prefix length —
// the cheap inspection path for store listings, which read 64 bytes +
// the table, never the sections.
func ParseV2HeaderPrefix(prefix []byte, fileSize int64) (*V2Info, error) {
	if fileSize < 0 || uint64(len(prefix)) > uint64(fileSize) {
		return nil, formatErrf("", "header prefix %d bytes exceeds stated file size %d", len(prefix), fileSize)
	}
	return parseV2Header(prefix, uint64(fileSize))
}

// V2HeaderPrefixLen is the number of bytes ParseV2HeaderPrefix needs:
// the fixed header plus the largest possible section table.
const V2HeaderPrefixLen = v2HeaderLen + v2MaxSections*v2SecEntryLen

func parseV2Header(data []byte, fileLen uint64) (*V2Info, error) {
	if len(data) < v2HeaderLen {
		return nil, formatErrf("", "file truncated: %d bytes, header needs %d", len(data), v2HeaderLen)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != binMagic {
		return nil, formatErrf("", "bad magic %#x (not a midas binary graph)", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != binVersion2 {
		return nil, formatErrf("", "version %d, want %d", v, binVersion2)
	}
	info := &V2Info{
		Flags:     binary.LittleEndian.Uint32(data[8:]),
		N:         binary.LittleEndian.Uint64(data[16:]),
		HalfEdges: binary.LittleEndian.Uint64(data[24:]),
	}
	count := binary.LittleEndian.Uint32(data[12:])
	tableOff := binary.LittleEndian.Uint64(data[32:])
	tableLen := binary.LittleEndian.Uint64(data[40:])
	const maxN = 1 << 31
	if info.N > maxN || info.HalfEdges > 16*maxN {
		return nil, formatErrf("", "implausible sizes n=%d halfEdges=%d", info.N, info.HalfEdges)
	}
	if count == 0 || count > v2MaxSections {
		return nil, formatErrf("", "section count %d out of range [1,%d]", count, v2MaxSections)
	}
	if tableOff != v2HeaderLen || tableLen != uint64(count)*v2SecEntryLen {
		return nil, formatErrf("", "section table geometry off=%d len=%d inconsistent with count %d", tableOff, tableLen, count)
	}
	if uint64(len(data)) < tableOff+tableLen {
		return nil, formatErrf("", "file truncated inside section table")
	}
	table := data[tableOff : tableOff+tableLen]
	hcrc := crc32.New(crcTable)
	hcrc.Write(data[:48])
	hcrc.Write(table)
	if got, want := hcrc.Sum32(), binary.LittleEndian.Uint32(data[48:]); got != want {
		return nil, formatErrf("", "header checksum mismatch (got %#x, stored %#x)", got, want)
	}

	wantLen := map[uint32]uint64{
		SecOffsets: 8 * (info.N + 1),
		SecAdj:     4 * info.HalfEdges,
		SecWeights: 8 * info.N,
		SecBase:    8 * info.N,
		SecLabels:  4 * info.N,
	}
	wantElem := map[uint32]uint32{
		SecOffsets: 8, SecAdj: 4, SecWeights: 8, SecBase: 8, SecLabels: 4,
	}
	prevEnd := tableOff + tableLen
	for i := uint32(0); i < count; i++ {
		e := table[i*v2SecEntryLen:]
		s := V2Section{
			ID:   binary.LittleEndian.Uint32(e[0:]),
			Elem: binary.LittleEndian.Uint32(e[4:]),
			Off:  binary.LittleEndian.Uint64(e[8:]),
			Len:  binary.LittleEndian.Uint64(e[16:]),
			CRC:  binary.LittleEndian.Uint32(e[24:]),
		}
		name := SectionName(s.ID)
		want, known := wantLen[s.ID]
		if !known {
			return nil, formatErrf(name, "unknown section id")
		}
		if _, dup := info.Section(s.ID); dup {
			return nil, formatErrf(name, "duplicate section")
		}
		if s.Elem != wantElem[s.ID] {
			return nil, formatErrf(name, "element size %d, want %d", s.Elem, wantElem[s.ID])
		}
		if s.Len != want {
			return nil, formatErrf(name, "length %d bytes, header implies %d", s.Len, want)
		}
		if s.Off%v2Align != 0 {
			return nil, formatErrf(name, "offset %d not %d-byte aligned", s.Off, v2Align)
		}
		if s.Off < prevEnd {
			return nil, formatErrf(name, "offset %d overlaps preceding data ending at %d", s.Off, prevEnd)
		}
		end := s.Off + s.Len
		if end < s.Off || fileLen < end {
			return nil, formatErrf(name, "section [%d,%d) exceeds file length %d", s.Off, end, fileLen)
		}
		prevEnd = end
		info.Sections = append(info.Sections, s)
		if end > info.FileLen {
			info.FileLen = end
		}
	}
	// Required sections, and flag/section consistency both ways.
	for _, req := range []uint32{SecOffsets, SecAdj} {
		if _, ok := info.Section(req); !ok {
			return nil, formatErrf(SectionName(req), "required section missing")
		}
	}
	for _, opt := range []struct {
		id  uint32
		bit uint32
	}{{SecWeights, 1}, {SecBase, 2}, {SecLabels, 4}} {
		_, present := info.Section(opt.id)
		if present != (info.Flags&opt.bit != 0) {
			return nil, formatErrf(SectionName(opt.id), "presence disagrees with header flags %#x", info.Flags)
		}
	}
	return info, nil
}

// hostLittleEndian reports whether native integer layout matches the
// on-disk little-endian format, enabling the zero-copy wrap.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// MapBinaryV2 wraps a version-2 file image (typically an mmap'd file)
// in a Graph. On little-endian hosts with aligned sections — always
// true for mmap'd files, since section offsets are 64-byte aligned and
// mappings are page-aligned — the Graph's CSR arrays alias data
// directly: no per-edge copy, no per-edge validation, O(header +
// sections) work total. The caller keeps ownership of data and must
// keep it valid (mapped) for the Graph's lifetime.
//
// Structural integrity beyond the header checksum is the writer's
// responsibility (WriteBinaryV2 only emits valid CSR); use
// VerifyBinaryV2 for an explicit full check of an untrusted file.
func MapBinaryV2(data []byte) (*Graph, *V2Info, error) {
	info, err := ParseV2Header(data)
	if err != nil {
		return nil, nil, err
	}
	i64 := func(id uint32) []int64 {
		s, ok := info.Section(id)
		if !ok || s.Len == 0 {
			return nil
		}
		return wrapI64(data[s.Off : s.Off+s.Len])
	}
	i32 := func(id uint32) []int32 {
		s, ok := info.Section(id)
		if !ok || s.Len == 0 {
			return nil
		}
		return wrapI32(data[s.Off : s.Off+s.Len])
	}
	offsets := i64(SecOffsets)
	adj := i32(SecAdj)
	if adj == nil {
		adj = []int32{} // n>0 graphs with zero edges still need a non-nil adj
	}
	if offsets[0] != 0 {
		return nil, nil, formatErrf("offsets", "first offset %d, want 0", offsets[0])
	}
	if uint64(offsets[info.N]) != info.HalfEdges {
		return nil, nil, formatErrf("offsets", "last offset %d != halfEdges %d", offsets[info.N], info.HalfEdges)
	}
	g, err := FromCSR(offsets, adj, i64(SecWeights), i64(SecBase), i32(SecLabels))
	if err != nil {
		return nil, nil, err
	}
	return g, info, nil
}

// wrapI64 reinterprets little-endian bytes as []int64 — zero-copy when
// the host layout allows, decoded otherwise.
func wrapI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// wrapI32 reinterprets little-endian bytes as []int32, like wrapI64.
func wrapI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// VerifyBinaryV2 runs the full O(bytes) integrity check on a
// version-2 file image: header and table (as ParseV2Header), then
// every section's CRC-32C, then the CSR structural invariants
// (monotone offsets, in-range adjacency). A file passing this check
// maps to a well-formed graph on any host.
func VerifyBinaryV2(data []byte) error {
	info, err := ParseV2Header(data)
	if err != nil {
		return err
	}
	for _, s := range info.Sections {
		if got := crc32.Checksum(data[s.Off:s.Off+s.Len], crcTable); got != s.CRC {
			return formatErrf(SectionName(s.ID), "checksum mismatch (got %#x, stored %#x)", got, s.CRC)
		}
	}
	g, _, err := MapBinaryV2(data)
	if err != nil {
		return err
	}
	return g.ValidateCSR()
}

// readBinaryV2 is ReadBinary's version-2 path: the magic and version
// (already consumed into prefix) plus the rest of the stream are
// buffered and decoded through MapBinaryV2. The graph aliases the read
// buffer — one allocation proportional to the file, zero further
// copies.
func readBinaryV2(r io.Reader, prefix []byte) (*Graph, error) {
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: v2 read: %w", err)
	}
	data := make([]byte, 0, len(prefix)+len(rest))
	data = append(data, prefix...)
	data = append(data, rest...)
	g, _, err := MapBinaryV2(data)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// saveWith writes path via fn with create/close error plumbing.
func saveWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fn(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
