package graph

// Traversal and structure utilities used by the partitioners, the
// baselines, and the test oracles.

// BFS runs a breadth-first search from src and returns the distance of
// every vertex (-1 for unreachable).
func BFS(g *Graph, src int32) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ConnectedComponents labels each vertex with a component id in
// [0, #components), assigned in order of discovery.
func ConnectedComponents(g *Graph) []int32 {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, 64)
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 {
					comp[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return comp
}

// IsConnected reports whether g is connected (the empty graph counts as
// connected).
func IsConnected(g *Graph) bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	dist := BFS(g, 0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// IsConnectedSubset reports whether the vertex subset s induces a
// connected subgraph of g. Used to validate scan-statistics outputs.
func IsConnectedSubset(g *Graph, s []int32) bool {
	if len(s) == 0 {
		return false
	}
	in := make(map[int32]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	if len(in) != len(s) {
		return false // duplicates
	}
	seen := map[int32]bool{s[0]: true}
	stack := []int32{s[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(v) {
			if in[u] && !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(s)
}

// HasPathOfLength reports, by exhaustive backtracking, whether g contains
// a simple path on k vertices. Exponential; the brute-force oracle for
// the multilinear detection tests. Do not call on large graphs with
// large k.
func HasPathOfLength(g *Graph, k int) bool {
	if k <= 0 {
		return false
	}
	n := g.NumVertices()
	if k == 1 {
		return n > 0
	}
	used := make([]bool, n)
	var dfs func(v int32, depth int) bool
	dfs = func(v int32, depth int) bool {
		if depth == k {
			return true
		}
		for _, u := range g.Neighbors(v) {
			if !used[u] {
				used[u] = true
				if dfs(u, depth+1) {
					return true
				}
				used[u] = false
			}
		}
		return false
	}
	for s := int32(0); s < int32(n); s++ {
		used[s] = true
		if dfs(s, 1) {
			return true
		}
		used[s] = false
	}
	return false
}

// CountPathsOfLength counts simple paths on k vertices (each undirected
// path counted once). Brute-force test oracle.
func CountPathsOfLength(g *Graph, k int) int64 {
	if k <= 0 {
		return 0
	}
	n := g.NumVertices()
	if k == 1 {
		return int64(n)
	}
	used := make([]bool, n)
	var count int64
	var start int32
	var dfs func(v int32, depth int)
	dfs = func(v int32, depth int) {
		if depth == k {
			count++
			return
		}
		for _, u := range g.Neighbors(v) {
			if !used[u] {
				used[u] = true
				dfs(u, depth+1)
				used[u] = false
			}
		}
	}
	for start = 0; start < int32(n); start++ {
		used[start] = true
		dfs(start, 1)
		used[start] = false
	}
	return count / 2 // each path traversed from both ends
}
