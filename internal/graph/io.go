package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Edge-list IO. The text format is the usual whitespace-separated
// "u v" per line (as used by SNAP datasets like com-Orkut), with '#'
// comment lines. An optional weights file carries one "v w [b]" line per
// weighted vertex.

// WriteEdgeList writes g in text edge-list form (each undirected edge
// once, "u v" per line) preceded by a header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# midas graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list. Vertex ids may be arbitrary
// non-negative integers; the graph is built on max_id+1 vertices.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges [][2]int32
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(int(maxID+1), edges), nil
}

// LoadEdgeList reads a graph from a file path.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveEdgeList writes a graph to a file path.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteWeights writes per-vertex "v w b" lines for all vertices.
func WriteWeights(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", v, g.Weight(v), g.Baseline(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWeights parses "v w [b]" lines and attaches them to g. Vertices
// not mentioned keep weight 0 and baseline 1.
func ReadWeights(r io.Reader, g *Graph) error {
	n := g.NumVertices()
	weights := make([]int64, n)
	base := make([]int64, n)
	for i := range base {
		base[i] = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: weights line %d: want 'v w [b]', got %q", lineNo, line)
		}
		v, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("graph: weights line %d: %v", lineNo, err)
		}
		if v < 0 || int(v) >= n {
			return fmt.Errorf("graph: weights line %d: vertex %d out of range", lineNo, v)
		}
		wv, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: weights line %d: %v", lineNo, err)
		}
		weights[v] = wv
		if len(fields) >= 3 {
			bv, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return fmt.Errorf("graph: weights line %d: %v", lineNo, err)
			}
			base[v] = bv
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	g.SetWeights(weights)
	g.SetBaselines(base)
	return nil
}

// ReadLabels reads a per-vertex "v c" label (color) file and attaches
// it to g. Absent vertices default to label 0; blank lines and
// #-comments are skipped.
func ReadLabels(r io.Reader, g *Graph) error {
	n := g.NumVertices()
	labels := make([]int32, n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: labels line %d: want 'v c', got %q", lineNo, line)
		}
		v, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("graph: labels line %d: %v", lineNo, err)
		}
		if v < 0 || int(v) >= n {
			return fmt.Errorf("graph: labels line %d: vertex %d out of range", lineNo, v)
		}
		c, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("graph: labels line %d: %v", lineNo, err)
		}
		labels[v] = int32(c)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	g.SetLabels(labels)
	return nil
}
