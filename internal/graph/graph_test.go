package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/midas-hpc/midas/internal/rng"
)

func TestBuilderDedupAndSort(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(3, 1)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (dedup + self-loop drop)", g.NumEdges())
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Neighbors(1) = %v, want [0 3]", got)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self-loop survived: deg(2) = %d", g.Degree(2))
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestHasEdge(t *testing.T) {
	g := Cycle(5)
	for i := int32(0); i < 5; i++ {
		if !g.HasEdge(i, (i+1)%5) || !g.HasEdge((i+1)%5, i) {
			t.Fatalf("cycle edge (%d,%d) missing", i, (i+1)%5)
		}
		if g.HasEdge(i, (i+2)%5) {
			t.Fatalf("phantom chord (%d,%d)", i, (i+2)%5)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := RandomGNM(50, 200, 1)
	g2 := FromEdges(50, g.Edges())
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for v := int32(0); v < 50; v++ {
		if g.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestCSRInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := RandomGNM(30, 60, seed)
		// symmetric: u in N(v) iff v in N(u); sorted adjacency
		for v := int32(0); v < 30; v++ {
			nbr := g.Neighbors(v)
			for i := 1; i < len(nbr); i++ {
				if nbr[i-1] >= nbr[i] {
					return false
				}
			}
			for _, u := range nbr {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeights(t *testing.T) {
	g := Path(3)
	if g.Weighted() {
		t.Fatal("fresh graph claims weights")
	}
	if g.Weight(0) != 0 || g.Baseline(0) != 1 {
		t.Fatal("default weight/baseline wrong")
	}
	g.SetWeights([]int64{5, 0, 2})
	g.SetBaselines([]int64{1, 1, 3})
	if !g.Weighted() || g.TotalWeight() != 7 || g.Weight(2) != 2 || g.Baseline(2) != 3 {
		t.Fatal("weight accessors wrong")
	}
}

func TestSetWeightsLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched SetWeights did not panic")
		}
	}()
	Path(3).SetWeights([]int64{1})
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	g.SetWeights([]int64{0, 1, 2, 3, 4, 5})
	sub, old := g.InducedSubgraph([]int32{1, 2, 3, 5})
	if sub.NumVertices() != 4 {
		t.Fatalf("sub n = %d", sub.NumVertices())
	}
	// edges among {1,2,3,5} in C6: (1,2),(2,3) → 2 edges
	if sub.NumEdges() != 2 {
		t.Fatalf("sub m = %d, want 2", sub.NumEdges())
	}
	if old[3] != 5 || sub.Weight(3) != 5 {
		t.Fatalf("weight carry-over broken: old=%v w=%d", old, sub.Weight(3))
	}
}

func TestDeleteVertices(t *testing.T) {
	g := Path(5)
	sub, old := g.DeleteVertices(map[int32]bool{2: true})
	if sub.NumVertices() != 4 || sub.NumEdges() != 2 {
		t.Fatalf("delete middle of P5: n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if len(old) != 4 {
		t.Fatalf("old mapping length %d", len(old))
	}
}

// --- generators ---

func TestRandomGNMExactEdgeCount(t *testing.T) {
	g := RandomGNM(100, 321, 7)
	if g.NumEdges() != 321 {
		t.Fatalf("G(n,m) produced %d edges, want 321", g.NumEdges())
	}
}

func TestRandomGNMRejectsTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overfull G(n,m) did not panic")
		}
	}()
	RandomGNM(4, 10, 1)
}

func TestRandomGNPEdgeCountPlausible(t *testing.T) {
	n, p := 300, 0.1
	g := RandomGNP(n, p, 3)
	want := p * float64(n*(n-1)/2)
	got := float64(g.NumEdges())
	if got < 0.8*want || got > 1.2*want {
		t.Fatalf("G(n,p) edges = %v, want ~%v", got, want)
	}
	if RandomGNP(50, 0, 1).NumEdges() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	if g := RandomGNP(10, 1, 1); g.NumEdges() != 45 {
		t.Fatalf("G(10,1) edges = %d, want 45", g.NumEdges())
	}
}

func TestRandomNLogNShape(t *testing.T) {
	g := RandomNLogN(1000, 5)
	if g.NumEdges() < 6500 || g.NumEdges() > 7400 {
		t.Fatalf("n ln n = ~6908 edges, got %d", g.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 9)
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !IsConnected(g) {
		t.Fatal("BA graph disconnected")
	}
	// power law: max degree should far exceed mean degree
	mean := 2 * float64(g.NumEdges()) / 2000
	if float64(g.MaxDegree()) < 5*mean {
		t.Fatalf("BA max degree %d not heavy-tailed vs mean %.1f", g.MaxDegree(), mean)
	}
	// Regression: the attachment loop once drained its candidate set in
	// map order, leaking iteration order into the sampling pool — the
	// same seed produced different graphs across process runs.
	h := BarabasiAlbert(2000, 4, 9)
	if !reflect.DeepEqual(g.Edges(), h.Edges()) {
		t.Fatal("BarabasiAlbert not deterministic for a fixed seed")
	}
}

func TestRoadNetworkConnectedLowDegree(t *testing.T) {
	g := RoadNetwork(40, 40, 11)
	if !IsConnected(g) {
		t.Fatal("road network disconnected")
	}
	if g.MaxDegree() > 10 {
		t.Fatalf("road network max degree %d implausibly high", g.MaxDegree())
	}
}

func TestSmallWorld(t *testing.T) {
	g := SmallWorld(200, 3, 0.1, 2)
	if g.NumVertices() != 200 {
		t.Fatal("bad n")
	}
	if g.NumEdges() < 550 || g.NumEdges() > 600 {
		t.Fatalf("small world edges = %d, want ~600", g.NumEdges())
	}
}

func TestFixtures(t *testing.T) {
	if g := Path(5); g.NumEdges() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("Path(5) malformed")
	}
	if g := Cycle(5); g.NumEdges() != 5 || g.Degree(0) != 2 {
		t.Fatal("Cycle(5) malformed")
	}
	if g := Star(5); g.NumEdges() != 4 || g.Degree(0) != 4 {
		t.Fatal("Star(5) malformed")
	}
	if g := Complete(5); g.NumEdges() != 10 {
		t.Fatal("K5 malformed")
	}
	if g := Grid(3, 4); g.NumEdges() != 3*3+2*4 {
		t.Fatalf("Grid(3,4) edges = %d, want 17", g.NumEdges())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomGNM(50, 100, 42).Edges()
	b := RandomGNM(50, 100, 42).Edges()
	if len(a) != len(b) {
		t.Fatal("same seed, different graphs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different graphs")
		}
	}
}

// --- traversal ---

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := BFS(g, 0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	comp := ConnectedComponents(g)
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Fatalf("components wrong: %v", comp)
	}
	if comp[0] == comp[2] || comp[5] == comp[0] || comp[5] == comp[2] {
		t.Fatalf("components merged: %v", comp)
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(Cycle(4)) {
		t.Fatal("cycle reported disconnected")
	}
}

func TestIsConnectedSubset(t *testing.T) {
	g := Path(6)
	if !IsConnectedSubset(g, []int32{1, 2, 3}) {
		t.Fatal("contiguous path slice should be connected")
	}
	if IsConnectedSubset(g, []int32{0, 2}) {
		t.Fatal("gap should not be connected")
	}
	if IsConnectedSubset(g, nil) {
		t.Fatal("empty set should not be connected")
	}
	if IsConnectedSubset(g, []int32{1, 1}) {
		t.Fatal("duplicates should be rejected")
	}
}

// --- brute-force oracles (self-test on known graphs) ---

func TestHasPathOfLengthKnown(t *testing.T) {
	g := Path(6)
	for k := 1; k <= 6; k++ {
		if !HasPathOfLength(g, k) {
			t.Fatalf("P6 should contain path on %d vertices", k)
		}
	}
	if HasPathOfLength(g, 7) {
		t.Fatal("P6 cannot contain 7-vertex path")
	}
	if HasPathOfLength(Star(10), 4) {
		t.Fatal("star has no 4-vertex path")
	}
	if !HasPathOfLength(Star(10), 3) {
		t.Fatal("star has 3-vertex paths")
	}
}

func TestCountPathsKnown(t *testing.T) {
	// C5: paths on 3 vertices = 5; on 5 vertices = 5.
	if got := CountPathsOfLength(Cycle(5), 3); got != 5 {
		t.Fatalf("C5 3-paths = %d, want 5", got)
	}
	if got := CountPathsOfLength(Cycle(5), 5); got != 5 {
		t.Fatalf("C5 5-paths = %d, want 5", got)
	}
	// K4: ordered simple 3-vertex walks = 4·3·2 = 24 → 12 undirected.
	if got := CountPathsOfLength(Complete(4), 3); got != 12 {
		t.Fatalf("K4 3-paths = %d, want 12", got)
	}
	if got := CountPathsOfLength(Path(4), 1); got != 4 {
		t.Fatalf("single-vertex paths = %d, want n", got)
	}
}

// --- templates ---

func TestTemplateValidation(t *testing.T) {
	if _, err := NewTemplate(3, [][2]int32{{0, 1}}); err == nil {
		t.Fatal("too few edges accepted")
	}
	if _, err := NewTemplate(3, [][2]int32{{0, 1}, {0, 1}}); err == nil {
		t.Fatal("multigraph accepted as tree")
	}
	if _, err := NewTemplate(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}}); err == nil {
		t.Fatal("cycle accepted as tree")
	}
	if _, err := NewTemplate(3, [][2]int32{{0, 1}, {1, 5}}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := NewTemplate(2, [][2]int32{{0, 1}}); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestDecomposeStructure(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		for _, tpl := range []*Template{PathTemplate(max(k, 1)), StarTemplate(max(k, 2)), RandomTemplate(max(k, 2), 77)} {
			d := tpl.Decompose()
			if want := 2*tpl.K() - 1; len(d.Nodes) != want {
				t.Fatalf("k=%d: decomposition has %d nodes, want %d", tpl.K(), len(d.Nodes), want)
			}
			if d.Nodes[d.Root].Size != tpl.K() {
				t.Fatalf("root size %d, want %d", d.Nodes[d.Root].Size, tpl.K())
			}
			leaves := 0
			for i, nd := range d.Nodes {
				if nd.Left < 0 != (nd.Right < 0) {
					t.Fatalf("node %d half-leaf", i)
				}
				if nd.Left < 0 {
					leaves++
					if nd.Size != 1 {
						t.Fatalf("leaf with size %d", nd.Size)
					}
					continue
				}
				if nd.Left >= i || nd.Right >= i {
					t.Fatalf("node %d references later child (topological order broken)", i)
				}
				if nd.Size != d.Nodes[nd.Left].Size+d.Nodes[nd.Right].Size {
					t.Fatalf("node %d size %d != %d + %d", i, nd.Size, d.Nodes[nd.Left].Size, d.Nodes[nd.Right].Size)
				}
			}
			if leaves != tpl.K() {
				t.Fatalf("%d leaves, want k=%d", leaves, tpl.K())
			}
		}
	}
}

func TestRandomTemplateIsTree(t *testing.T) {
	r := rng.New(4)
	for i := 0; i < 20; i++ {
		k := 2 + r.Intn(12)
		tpl := RandomTemplate(k, r.Uint64())
		deg := 0
		for v := int32(0); v < int32(k); v++ {
			deg += len(tpl.Neighbors(v))
		}
		if deg != 2*(k-1) {
			t.Fatalf("random template on %d vertices has %d half-edges", k, deg)
		}
	}
}

func TestHasTreeEmbeddingKnown(t *testing.T) {
	g := Grid(3, 3)
	if !HasTreeEmbedding(g, PathTemplate(5)) {
		t.Fatal("grid should embed P5")
	}
	if !HasTreeEmbedding(g, StarTemplate(5)) {
		t.Fatal("grid center has degree 4: star-5 embeds")
	}
	if HasTreeEmbedding(g, StarTemplate(6)) {
		t.Fatal("grid max degree 4 cannot embed star-6")
	}
	if HasTreeEmbedding(Path(3), PathTemplate(4)) {
		t.Fatal("P3 cannot embed P4")
	}
	if !HasTreeEmbedding(Path(3), PathTemplate(3)) {
		t.Fatal("P3 embeds itself")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 8, 3) // 1024 vertices, nominal 8192 edges
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() < 4000 || g.NumEdges() > 8192 {
		t.Fatalf("edges = %d, want (4000, 8192] after dedup", g.NumEdges())
	}
	// heavy tail: max degree far above mean
	mean := 2 * float64(g.NumEdges()) / 1024
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("RMAT max degree %d not heavy-tailed vs mean %.1f", g.MaxDegree(), mean)
	}
	// determinism
	g2 := RMAT(10, 8, 3)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("same seed, different RMAT graph")
	}
}

func TestRMATValidation(t *testing.T) {
	for _, f := range []func(){
		func() { RMAT(0, 8, 1) }, func() { RMAT(29, 8, 1) }, func() { RMAT(5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad RMAT parameters accepted")
				}
			}()
			f()
		}()
	}
}
