package graph

import (
	"fmt"
	"math"
	"slices"

	"github.com/midas-hpc/midas/internal/rng"
)

// This file contains the synthetic dataset generators. The paper's
// evaluation (Table II) uses miami (a spatially embedded synthetic
// population contact network), com-Orkut (a heavy-tailed social network)
// and two Erdős–Rényi graphs with m = n·ln n. We reproduce those three
// structural classes at configurable scale:
//
//   RandomGNM / RandomGNP   → the random-1e6 / random-1e7 analogues
//   BarabasiAlbert          → the com-Orkut analogue (power-law degrees)
//   RoadNetwork             → the miami analogue and the Fig 13 substrate
//                             (low, near-uniform degree, high diameter,
//                             planar-ish spatial structure)

// RandomGNM returns an Erdős–Rényi G(n, m) graph: m edges sampled
// uniformly without replacement from all vertex pairs.
func RandomGNM(n, m int, seed uint64) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: G(n,m) with m=%d > n(n-1)/2=%d", m, maxM))
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	seen := make(map[uint64]bool, m)
	for len(seen) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// RandomNLogN returns the paper's random-* dataset shape: G(n, m) with
// m = round(n·ln n).
func RandomNLogN(n int, seed uint64) *Graph {
	m := int(math.Round(float64(n) * math.Log(float64(n))))
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	return RandomGNM(n, m, seed)
}

// RandomGNP returns an Erdős–Rényi G(n, p) graph using geometric edge
// skipping (O(n + m) expected time).
func RandomGNP(n int, p float64, seed uint64) *Graph {
	if p < 0 || p > 1 {
		panic("graph: G(n,p) probability out of [0,1]")
	}
	b := NewBuilder(n)
	if p == 0 || n < 2 {
		return b.Build()
	}
	r := rng.New(seed)
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(int32(u), int32(v))
			}
		}
		return b.Build()
	}
	lq := math.Log(1 - p)
	// Iterate over the upper-triangular pair index space with geometric jumps.
	v, w := 1, -1
	for v < n {
		w += 1 + int(math.Log(1-r.Float64())/lq)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(int32(v), int32(w))
		}
	}
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: each new vertex
// attaches to mAttach existing vertices chosen proportionally to degree.
// Degrees follow a power law, giving the com-Orkut-like hub structure
// that stresses MaxDeg in Theorem 2.
func BarabasiAlbert(n, mAttach int, seed uint64) *Graph {
	if mAttach < 1 || n <= mAttach {
		panic(fmt.Sprintf("graph: BarabasiAlbert needs 1 <= mAttach=%d < n=%d", mAttach, n))
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	// repeated-endpoint list: picking a uniform element is degree-
	// proportional sampling.
	targets := make([]int32, 0, 2*n*mAttach)
	// Seed clique on mAttach+1 vertices.
	for u := 0; u <= mAttach; u++ {
		for v := u + 1; v <= mAttach; v++ {
			b.AddEdge(int32(u), int32(v))
			targets = append(targets, int32(u), int32(v))
		}
	}
	chosen := make(map[int32]bool, mAttach)
	picks := make([]int32, 0, mAttach)
	for v := mAttach + 1; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		for len(chosen) < mAttach {
			chosen[targets[r.Intn(len(targets))]] = true
		}
		// Drain the set in sorted order: map iteration order would leak
		// into the targets list (and so into every later draw), making
		// the graph nondeterministic for a fixed seed.
		picks = picks[:0]
		for u := range chosen {
			picks = append(picks, u)
		}
		slices.Sort(picks)
		for _, u := range picks {
			b.AddEdge(int32(v), u)
			targets = append(targets, int32(v), u)
		}
	}
	return b.Build()
}

// RoadNetwork returns a spatially embedded road-like graph: a rows×cols
// lattice with a fraction of edges removed (dead ends / missing links)
// and a sprinkling of diagonal shortcuts (interchanges). Degree is near
// uniform and small, diameter is large — the miami contact network's
// relevant properties for MIDAS (low MaxDeg after spatial partitioning).
// The graph is guaranteed connected (removals that disconnect are
// re-added).
func RoadNetwork(rows, cols int, seed uint64) *Graph {
	n := rows * cols
	r := rng.New(seed)
	id := func(i, j int) int32 { return int32(i*cols + j) }
	b := NewBuilder(n)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols && r.Float64() > 0.08 {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < rows && r.Float64() > 0.08 {
				b.AddEdge(id(i, j), id(i+1, j))
			}
			if i+1 < rows && j+1 < cols && r.Float64() < 0.05 {
				b.AddEdge(id(i, j), id(i+1, j+1))
			}
		}
	}
	g := b.Build()
	// Reconnect if edge removal split the lattice: chain component
	// representatives along grid order.
	comp := ConnectedComponents(g)
	ncomp := 0
	for _, c := range comp {
		if c+1 > int32(ncomp) {
			ncomp = int(c + 1)
		}
	}
	if ncomp > 1 {
		rep := make([]int32, ncomp)
		for i := range rep {
			rep[i] = -1
		}
		for v := int32(0); v < int32(n); v++ {
			if rep[comp[v]] < 0 {
				rep[comp[v]] = v
			}
		}
		b2 := NewBuilder(n)
		for _, e := range g.Edges() {
			b2.AddEdge(e[0], e[1])
		}
		for c := 1; c < ncomp; c++ {
			b2.AddEdge(rep[0], rep[c])
		}
		g = b2.Build()
	}
	return g
}

// RMAT returns a recursive-matrix (Kronecker-style, Graph500 flavor)
// graph on 2^scale vertices with edgeFactor·2^scale edges, using the
// standard (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities.
// Degrees are heavy-tailed with community-like structure — an
// alternative com-Orkut-class generator. Self-loops and duplicates are
// dropped, so the final edge count is slightly below the nominal.
func RMAT(scale, edgeFactor int, seed uint64) *Graph {
	if scale < 1 || scale > 28 {
		panic(fmt.Sprintf("graph: RMAT scale %d out of [1,28]", scale))
	}
	if edgeFactor < 1 {
		panic("graph: RMAT edgeFactor must be positive")
	}
	n := 1 << uint(scale)
	r := rng.New(seed)
	b := NewBuilder(n)
	const a, bb, c = 0.57, 0.19, 0.19 // d = 1 - a - b - c
	for e := 0; e < edgeFactor*n; e++ {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			p := r.Float64()
			switch {
			case p < a:
				// (0,0)
			case p < a+bb:
				v |= 1 << uint(bit)
			case p < a+bb+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		b.AddEdge(int32(u), int32(v))
	}
	return b.Build()
}

// SmallWorld returns a Watts–Strogatz ring lattice on n vertices where
// each vertex connects to its kHalf nearest neighbors on each side and
// each edge is rewired with probability beta.
func SmallWorld(n, kHalf int, beta float64, seed uint64) *Graph {
	if kHalf < 1 || n <= 2*kHalf {
		panic(fmt.Sprintf("graph: SmallWorld needs 1 <= kHalf=%d and n=%d > 2*kHalf", kHalf, n))
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for d := 1; d <= kHalf; d++ {
			v := (u + d) % n
			if r.Float64() < beta {
				w := r.Intn(n)
				for w == u {
					w = r.Intn(n)
				}
				v = w
			}
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// Path returns the path graph on n vertices (0-1-2-…-(n-1)).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// Grid returns the rows×cols lattice (no removals); vertex (i,j) has id
// i*cols+j.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(i, j int) int32 { return int32(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}
