package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph formats: the CSR arrays dumped directly, little-endian,
// for fast loading of large graphs (text edge lists parse at tens of
// MB/s; these load at memory bandwidth). Two versions share the magic:
//
// Version 1 — a plain sequential stream, written by WriteBinary:
//
//	magic   u32  = 0x4d494447 ("MIDG")
//	version u32  = 1
//	flags   u32  (bit 0: weights present, bit 1: baselines present)
//	n       u64
//	halfEdges u64          (len(adj) == 2m)
//	offsets [n+1]u64
//	adj     [halfEdges]u32
//	weights [n]i64         (if flag bit 0)
//	base    [n]i64         (if flag bit 1)
//
// Version 2 — the aligned, checksummed, section-table layout written
// by WriteBinaryV2 and served zero-copy from an mmap by MapBinaryV2
// (binio2.go; docs/STORAGE.md describes it field by field).
const (
	binMagic    = 0x4d494447
	binVersion  = 1
	binVersion2 = 2
)

// encChunk is the staging-buffer size for bulk section encode/decode:
// big enough that the per-chunk call overhead vanishes, small enough
// to stay cache-resident.
const encChunk = 64 << 10

// WriteBinary writes g in the version-1 binary CSR format. Sections
// are bulk-encoded through a reused staging buffer — one Write per
// 64 KiB, not one per element.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	flags := uint32(0)
	if g.weights != nil {
		flags |= 1
	}
	if g.base != nil {
		flags |= 2
	}
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], binMagic)
	binary.LittleEndian.PutUint32(hdr[4:], binVersion)
	binary.LittleEndian.PutUint32(hdr[8:], flags)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(len(g.adj)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, encChunk)
	if err := writeI64s(bw, buf, g.offsets); err != nil {
		return err
	}
	if err := writeI32s(bw, buf, g.adj); err != nil {
		return err
	}
	if g.weights != nil {
		if err := writeI64s(bw, buf, g.weights); err != nil {
			return err
		}
	}
	if g.base != nil {
		if err := writeI64s(bw, buf, g.base); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeI64s bulk-encodes v little-endian through buf (chunk staging).
func writeI64s(w io.Writer, buf []byte, v []int64) error {
	per := len(buf) / 8
	for len(v) > 0 {
		n := per
		if n > len(v) {
			n = len(v)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(v[i]))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		v = v[n:]
	}
	return nil
}

// writeI32s bulk-encodes v little-endian through buf.
func writeI32s(w io.Writer, buf []byte, v []int32) error {
	per := len(buf) / 4
	for len(v) > 0 {
		n := per
		if n > len(v) {
			n = len(v)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v[i]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		v = v[n:]
	}
	return nil
}

// ReadBinary parses either binary CSR version, validating structural
// invariants (monotone offsets, in-range adjacency) so corrupted files
// fail loudly rather than corrupting downstream DPs. Version-2 files
// are fully buffered and decoded through the section table; for
// zero-copy access to a version-2 file use MapBinaryV2 (or
// internal/store, which manages the mmap lifecycle).
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:8]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	version := binary.LittleEndian.Uint32(hdr[4:])
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (not a midas binary graph)", magic)
	}
	switch version {
	case binVersion:
	case binVersion2:
		return readBinaryV2(br, hdr[:8])
	default:
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	if _, err := io.ReadFull(br, hdr[8:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	flags := binary.LittleEndian.Uint32(hdr[8:])
	n := binary.LittleEndian.Uint64(hdr[12:])
	half := binary.LittleEndian.Uint64(hdr[20:])
	const maxN = 1 << 31
	if n > maxN || half > 16*maxN {
		return nil, fmt.Errorf("graph: implausible sizes n=%d halfEdges=%d", n, half)
	}
	// Decode in chunks, growing the arrays as data actually arrives
	// rather than trusting the header with a huge up-front allocation: a
	// hostile or truncated header then fails at the first missing byte,
	// having allocated only in proportion to the data present.
	g := &Graph{}
	buf := make([]byte, encChunk)
	remaining := n + 1
	var prev int64
	for remaining > 0 {
		c := uint64(len(buf) / 8)
		if c > remaining {
			c = remaining
		}
		if _, err := io.ReadFull(br, buf[:8*c]); err != nil {
			return nil, fmt.Errorf("graph: offsets: %w", err)
		}
		for i := uint64(0); i < c; i++ {
			off := int64(binary.LittleEndian.Uint64(buf[8*i:]))
			if len(g.offsets) > 0 && off < prev {
				return nil, fmt.Errorf("graph: offsets not monotone at %d", len(g.offsets))
			}
			prev = off
			g.offsets = append(g.offsets, off)
		}
		remaining -= c
	}
	if uint64(g.offsets[n]) != half {
		return nil, fmt.Errorf("graph: offsets end %d != halfEdges %d", g.offsets[n], half)
	}
	remaining = half
	for remaining > 0 {
		c := uint64(len(buf) / 4)
		if c > remaining {
			c = remaining
		}
		if _, err := io.ReadFull(br, buf[:4*c]); err != nil {
			return nil, fmt.Errorf("graph: adjacency: %w", err)
		}
		for i := uint64(0); i < c; i++ {
			a := binary.LittleEndian.Uint32(buf[4*i:])
			if uint64(a) >= n {
				return nil, fmt.Errorf("graph: adjacency entry %d out of range", a)
			}
			g.adj = append(g.adj, int32(a))
		}
		remaining -= c
	}
	if flags&1 != 0 {
		w, err := readI64s(br, buf, int(n))
		if err != nil {
			return nil, fmt.Errorf("graph: weights: %w", err)
		}
		g.weights = w
	}
	if flags&2 != 0 {
		b, err := readI64s(br, buf, int(n))
		if err != nil {
			return nil, fmt.Errorf("graph: baselines: %w", err)
		}
		g.base = b
	}
	return g, nil
}

// readI64s bulk-decodes n little-endian int64s through buf.
func readI64s(r io.Reader, buf []byte, n int) ([]int64, error) {
	out := make([]int64, 0, n)
	for n > 0 {
		c := len(buf) / 8
		if c > n {
			c = n
		}
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		n -= c
	}
	return out, nil
}

// SaveBinary writes a graph to path in binary form.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a binary graph (either version) from path.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Load reads a graph in any supported format, sniffing the binary magic.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 && binary.LittleEndian.Uint32(head) == binMagic {
		return ReadBinary(br)
	}
	return ReadEdgeList(br)
}
