package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph format: the CSR arrays dumped directly, little-endian,
// for fast loading of large graphs (text edge lists parse at tens of
// MB/s; this loads at memory bandwidth). Layout:
//
//	magic   u32  = 0x4d494447 ("MIDG")
//	version u32  = 1
//	flags   u32  (bit 0: weights present, bit 1: baselines present)
//	n       u64
//	halfEdges u64          (len(adj) == 2m)
//	offsets [n+1]u64
//	adj     [halfEdges]u32
//	weights [n]i64         (if flag bit 0)
//	base    [n]i64         (if flag bit 1)
const (
	binMagic   = 0x4d494447
	binVersion = 1
)

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	flags := uint32(0)
	if g.weights != nil {
		flags |= 1
	}
	if g.base != nil {
		flags |= 2
	}
	hdr := []interface{}{
		uint32(binMagic), uint32(binVersion), flags,
		uint64(g.NumVertices()), uint64(len(g.adj)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, o := range g.offsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(o)); err != nil {
			return err
		}
	}
	buf := make([]byte, 4)
	for _, a := range g.adj {
		binary.LittleEndian.PutUint32(buf, uint32(a))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if g.weights != nil {
		if err := writeI64s(bw, g.weights); err != nil {
			return err
		}
	}
	if g.base != nil {
		if err := writeI64s(bw, g.base); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeI64s(w io.Writer, v []int64) error {
	buf := make([]byte, 8)
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf, uint64(x))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary parses the binary CSR format, validating structural
// invariants (monotone offsets, in-range adjacency) so corrupted files
// fail loudly rather than corrupting downstream DPs.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version, flags uint32
	var n, half uint64
	for _, p := range []interface{}{&magic, &version, &flags} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (not a midas binary graph)", magic)
	}
	if version != binVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	for _, p := range []interface{}{&n, &half} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	const maxN = 1 << 31
	if n > maxN || half > 16*maxN {
		return nil, fmt.Errorf("graph: implausible sizes n=%d halfEdges=%d", n, half)
	}
	// Grow arrays while reading rather than trusting the header with a
	// huge up-front allocation: a hostile or truncated header then fails
	// at the first missing byte, having allocated only in proportion to
	// the data actually present.
	g := &Graph{}
	buf := make([]byte, 8)
	for i := uint64(0); i <= n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: offsets: %w", err)
		}
		off := int64(binary.LittleEndian.Uint64(buf))
		if i > 0 && off < g.offsets[i-1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
		g.offsets = append(g.offsets, off)
	}
	if uint64(g.offsets[n]) != half {
		return nil, fmt.Errorf("graph: offsets end %d != halfEdges %d", g.offsets[n], half)
	}
	for i := uint64(0); i < half; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: adjacency: %w", err)
		}
		a := binary.LittleEndian.Uint32(buf[:4])
		if uint64(a) >= n {
			return nil, fmt.Errorf("graph: adjacency entry %d out of range", a)
		}
		g.adj = append(g.adj, int32(a))
	}
	if flags&1 != 0 {
		w, err := readI64s(br, int(n))
		if err != nil {
			return nil, fmt.Errorf("graph: weights: %w", err)
		}
		g.weights = w
	}
	if flags&2 != 0 {
		b, err := readI64s(br, int(n))
		if err != nil {
			return nil, fmt.Errorf("graph: baselines: %w", err)
		}
		g.base = b
	}
	return g, nil
}

func readI64s(r io.Reader, n int) ([]int64, error) {
	out := make([]int64, n)
	buf := make([]byte, 8)
	for i := range out {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out[i] = int64(binary.LittleEndian.Uint64(buf))
	}
	return out, nil
}

// SaveBinary writes a graph to path in binary form.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a binary graph from path.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Load reads a graph in either format, sniffing the binary magic.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 && binary.LittleEndian.Uint32(head) == binMagic {
		return ReadBinary(br)
	}
	return ReadEdgeList(br)
}
