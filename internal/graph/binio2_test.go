package graph

import (
	"bytes"
	"testing"
)

// v2TestGraph builds a graph exercising every optional section.
func v2TestGraph() *Graph {
	g := RandomGNM(120, 400, 11)
	n := g.NumVertices()
	w := make([]int64, n)
	b := make([]int64, n)
	l := make([]int32, n)
	for i := 0; i < n; i++ {
		w[i] = int64(i * 3)
		b[i] = int64(1 + i%4)
		l[i] = int32(i % 5)
	}
	g.SetWeights(w)
	g.SetBaselines(b)
	g.SetLabels(l)
	return g
}

func v2Bytes(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func graphsEqualLabeled(t *testing.T, a, b *Graph) {
	t.Helper()
	graphsEqual(t, a, b)
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		if a.Label(v) != b.Label(v) {
			t.Fatalf("label mismatch at %d", v)
		}
	}
}

func TestV2RoundTripMapped(t *testing.T) {
	g := v2TestGraph()
	data := v2Bytes(t, g)
	if got := int64(len(data)); got != V2FileSize(g) {
		t.Fatalf("file size %d, V2FileSize promised %d", got, V2FileSize(g))
	}
	g2, info, err := MapBinaryV2(data)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqualLabeled(t, g, g2)
	if !g2.Weighted() || !g2.Labeled() {
		t.Fatal("optional sections lost")
	}
	if len(info.Sections) != 5 {
		t.Fatalf("section count %d, want 5", len(info.Sections))
	}
	for _, s := range info.Sections {
		if s.Off%v2Align != 0 {
			t.Fatalf("section %s misaligned at %d", SectionName(s.ID), s.Off)
		}
	}
	if g.Digest() != g2.Digest() {
		t.Fatal("digest changed across v2 round trip")
	}
	if err := VerifyBinaryV2(data); err != nil {
		t.Fatalf("verify of freshly-written file: %v", err)
	}
}

func TestV2RoundTripMinimal(t *testing.T) {
	// No optional sections; also the degenerate single-vertex graph.
	for _, g := range []*Graph{Path(7), FromEdges(1, nil)} {
		data := v2Bytes(t, g)
		g2, _, err := MapBinaryV2(data)
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, g, g2)
	}
}

func TestV2ReadBinaryDispatch(t *testing.T) {
	// ReadBinary and Load must transparently handle v2 files.
	g := v2TestGraph()
	data := v2Bytes(t, g)
	g2, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqualLabeled(t, g, g2)
}

func TestV2RejectsCorruption(t *testing.T) {
	g := v2TestGraph()
	good := v2Bytes(t, g)

	mustFailOpen := func(name string, data []byte) {
		t.Helper()
		if _, _, err := MapBinaryV2(data); err == nil {
			t.Fatalf("%s: corrupt file mapped without error", name)
		}
	}

	// Truncation at every prefix: structured error, never a panic. A
	// truncated file either fails the header parse (cut inside header or
	// table) or the section bounds check.
	for cut := 0; cut < len(good); cut += 31 {
		mustFailOpen("truncate", good[:cut])
	}

	flip := func(i int) []byte {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		return bad
	}
	mustFailOpen("magic", flip(0))
	mustFailOpen("version", flip(4))
	mustFailOpen("flags", flip(8))          // header CRC catches it
	mustFailOpen("section count", flip(12)) // geometry/CRC catches it
	mustFailOpen("n", flip(16))
	mustFailOpen("header crc", flip(48))
	// Any flipped bit inside the section table breaks the header CRC.
	mustFailOpen("table", flip(v2HeaderLen+9))

	// Flipped data bytes pass the O(header) open — that is the lazy
	// mapping contract — but must fail the full verify.
	info, err := ParseV2Header(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range info.Sections {
		bad := flip(int(s.Off) + int(s.Len)/2)
		if err := VerifyBinaryV2(bad); err == nil {
			t.Fatalf("flipped byte in %s passed verify", SectionName(s.ID))
		}
	}
}

func TestFromCSRValidation(t *testing.T) {
	if _, err := FromCSR(nil, nil, nil, nil, nil); err == nil {
		t.Fatal("empty offsets accepted")
	}
	if _, err := FromCSR([]int64{1, 2}, []int32{0, 0}, nil, nil, nil); err == nil {
		t.Fatal("nonzero first offset accepted")
	}
	if _, err := FromCSR([]int64{0, 1}, []int32{0, 0}, nil, nil, nil); err == nil {
		t.Fatal("offsets/adj length mismatch accepted")
	}
	if _, err := FromCSR([]int64{0, 0}, nil, []int64{1, 2}, nil, nil); err == nil {
		t.Fatal("wrong weights length accepted")
	}
	g, err := FromCSR([]int64{0, 1, 2}, []int32{1, 0}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 || !g.HasEdge(0, 1) {
		t.Fatalf("wrapped graph malformed: %v", g)
	}
	if err := g.ValidateCSR(); err != nil {
		t.Fatal(err)
	}
	bad, _ := FromCSR([]int64{0, 2}, []int32{0, 9}, nil, nil, nil)
	if err := bad.ValidateCSR(); err == nil {
		t.Fatal("out-of-range adjacency passed ValidateCSR")
	}
	bad2, _ := FromCSR([]int64{0, 2, 1, 2}, []int32{0, 1}, nil, nil, nil)
	if err := bad2.ValidateCSR(); err == nil {
		t.Fatal("non-monotone offsets passed ValidateCSR")
	}
}

// FuzzV2Header feeds arbitrary bytes to the v2 header/section-table
// parser (and, when the header parses, the full verify): any input
// must produce a graph or a structured error — never a panic, never an
// out-of-bounds access.
func FuzzV2Header(f *testing.F) {
	f.Add([]byte{})
	g := v2TestGraph()
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:v2HeaderLen])
	f.Add(good[:v2HeaderLen+3*v2SecEntryLen])
	mut := append([]byte(nil), good...)
	mut[50] ^= 0x10
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := ParseV2Header(data)
		if err != nil {
			return
		}
		// A parse that succeeds promises in-bounds sections; mapping and
		// verifying must then be safe (errors fine, panics not).
		if uint64(len(data)) < info.FileLen {
			t.Fatalf("header accepted but FileLen %d > data %d", info.FileLen, len(data))
		}
		if g, _, err := MapBinaryV2(data); err == nil {
			_ = g.NumVertices()
			_ = g.NumEdges()
		}
		_ = VerifyBinaryV2(data)
	})
}

func BenchmarkV2Map(b *testing.B) {
	g := RandomGNM(5000, 40000, 1)
	data := v2Bytes(b, g)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MapBinaryV2(data); err != nil {
			b.Fatal(err)
		}
	}
}
