package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := RandomGNM(40, 120, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %v vs %v", g2, g)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestReadEdgeListCommentsAndErrors(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# comment\n% another\n0 1\n\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %v", g)
	}
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 x\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestFileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := Cycle(7)
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 7 {
		t.Fatalf("loaded %d edges", g2.NumEdges())
	}
	if _, err := LoadEdgeList(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	g := Path(4)
	g.SetWeights([]int64{3, 0, 0, 9})
	g.SetBaselines([]int64{1, 2, 1, 4})
	var buf bytes.Buffer
	if err := WriteWeights(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2 := Path(4)
	if err := ReadWeights(&buf, g2); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 4; v++ {
		if g2.Weight(v) != g.Weight(v) || g2.Baseline(v) != g.Baseline(v) {
			t.Fatalf("weights round trip broke at %d", v)
		}
	}
}

func TestReadWeightsErrors(t *testing.T) {
	g := Path(2)
	for _, bad := range []string{"0\n", "9 1\n", "x 1\n", "0 x\n", "0 1 x\n"} {
		if err := ReadWeights(strings.NewReader(bad), Path(2)); err == nil {
			t.Fatalf("bad weights line %q accepted", bad)
		}
	}
	if err := ReadWeights(strings.NewReader("1 7\n"), g); err != nil {
		t.Fatal(err)
	}
	if g.Weight(1) != 7 || g.Baseline(0) != 1 {
		t.Fatal("defaults not applied")
	}
}
