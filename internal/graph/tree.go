package graph

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/rng"
)

// Template is the k-vertex tree H = (V^H, E^H) whose non-induced
// embeddings k-Tree searches for. Vertices are 0..K-1.
type Template struct {
	k   int
	adj [][]int32
}

// NewTemplate validates that edges form a tree on k vertices and returns
// the template. It returns an error on disconnected or cyclic input.
func NewTemplate(k int, edges [][2]int32) (*Template, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: template needs k >= 1, got %d", k)
	}
	if len(edges) != k-1 {
		return nil, fmt.Errorf("graph: tree on %d vertices needs %d edges, got %d", k, k-1, len(edges))
	}
	t := &Template{k: k, adj: make([][]int32, k)}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= k || int(v) >= k || u == v {
			return nil, fmt.Errorf("graph: bad template edge (%d,%d)", u, v)
		}
		t.adj[u] = append(t.adj[u], v)
		t.adj[v] = append(t.adj[v], u)
	}
	// connectivity check (k-1 edges + connected ⇒ tree)
	seen := make([]bool, k)
	stack := []int32{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range t.adj[v] {
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	if cnt != k {
		return nil, fmt.Errorf("graph: template edges do not form a tree (reached %d of %d vertices)", cnt, k)
	}
	return t, nil
}

// MustTemplate is NewTemplate that panics on error; for fixtures.
func MustTemplate(k int, edges [][2]int32) *Template {
	t, err := NewTemplate(k, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// K returns the number of template vertices.
func (t *Template) K() int { return t.k }

// Neighbors returns the template adjacency of v.
func (t *Template) Neighbors(v int32) []int32 { return t.adj[v] }

// PathTemplate returns the k-vertex path template (so k-Tree degenerates
// to k-Path, which the tests exploit for cross-validation).
func PathTemplate(k int) *Template {
	edges := make([][2]int32, 0, k-1)
	for i := 0; i+1 < k; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	return MustTemplate(k, edges)
}

// StarTemplate returns the star on k vertices with center 0.
func StarTemplate(k int) *Template {
	edges := make([][2]int32, 0, k-1)
	for i := 1; i < k; i++ {
		edges = append(edges, [2]int32{0, int32(i)})
	}
	return MustTemplate(k, edges)
}

// BinaryTreeTemplate returns the complete-ish binary tree on k vertices
// (vertex i's parent is (i-1)/2).
func BinaryTreeTemplate(k int) *Template {
	edges := make([][2]int32, 0, k-1)
	for i := 1; i < k; i++ {
		edges = append(edges, [2]int32{int32((i - 1) / 2), int32(i)})
	}
	return MustTemplate(k, edges)
}

// RandomTemplate returns a uniform random labeled tree on k vertices via
// a random Prüfer sequence.
func RandomTemplate(k int, seed uint64) *Template {
	if k == 1 {
		return MustTemplate(1, nil)
	}
	if k == 2 {
		return MustTemplate(2, [][2]int32{{0, 1}})
	}
	r := rng.New(seed)
	prufer := make([]int, k-2)
	for i := range prufer {
		prufer[i] = r.Intn(k)
	}
	deg := make([]int, k)
	for i := range deg {
		deg[i] = 1
	}
	for _, p := range prufer {
		deg[p]++
	}
	edges := make([][2]int32, 0, k-1)
	for _, p := range prufer {
		for leaf := 0; leaf < k; leaf++ {
			if deg[leaf] == 1 {
				edges = append(edges, [2]int32{int32(leaf), int32(p)})
				deg[leaf]--
				deg[p]--
				break
			}
		}
	}
	u, v := -1, -1
	for i := 0; i < k; i++ {
		if deg[i] == 1 {
			if u < 0 {
				u = i
			} else {
				v = i
			}
		}
	}
	edges = append(edges, [2]int32{int32(u), int32(v)})
	return MustTemplate(k, edges)
}

// Subtree is one node of the template decomposition (paper, Fig 2): a
// rooted subtree of H. A leaf has Left == Right == -1; an internal node
// splits off the subtree hanging from one neighbor of its root:
// Left keeps this subtree's root, Right is rooted at the split-off
// neighbor, and Size = Left.Size + Right.Size.
type Subtree struct {
	Size        int
	Left, Right int
}

// Decomposition is the collection T of subtrees of H, indexed so that
// children precede parents (evaluating nodes in index order satisfies
// every dependency). Node Root (the last index) is H itself.
type Decomposition struct {
	Nodes []Subtree
	Root  int
}

// Decompose roots the template at vertex 0 and recursively splits it per
// the paper's Fig 2, producing 2k-1 subtree nodes.
func (t *Template) Decompose() *Decomposition {
	// children lists under root 0
	parent := make([]int32, t.k)
	order := make([]int32, 0, t.k)
	parent[0] = -1
	seen := make([]bool, t.k)
	seen[0] = true
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range t.adj[v] {
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	children := make([][]int32, t.k)
	for _, v := range order {
		if parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	d := &Decomposition{}
	// build recursively: node for (root r with the suffix of its child
	// list starting at index ci).
	var build func(r int32, ci int) int
	build = func(r int32, ci int) int {
		if ci >= len(children[r]) {
			d.Nodes = append(d.Nodes, Subtree{Size: 1, Left: -1, Right: -1})
			return len(d.Nodes) - 1
		}
		u := children[r][ci]
		right := build(u, 0)
		left := build(r, ci+1)
		d.Nodes = append(d.Nodes, Subtree{
			Size:  d.Nodes[left].Size + d.Nodes[right].Size,
			Left:  left,
			Right: right,
		})
		return len(d.Nodes) - 1
	}
	d.Root = build(0, 0)
	return d
}

// HasTreeEmbedding reports, by exhaustive backtracking, whether the
// template has a non-induced embedding in g (injective vertex map
// preserving template edges). Brute-force test oracle.
func HasTreeEmbedding(g *Graph, t *Template) bool {
	n := g.NumVertices()
	if t.k > n {
		return false
	}
	// BFS order from template vertex 0 so each vertex after the first
	// has a mapped template neighbor.
	order := make([]int32, 0, t.k)
	attach := make([]int32, t.k) // template parent in BFS tree
	seen := make([]bool, t.k)
	seen[0] = true
	attach[0] = -1
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range t.adj[v] {
			if !seen[u] {
				seen[u] = true
				attach[u] = v
				queue = append(queue, u)
			}
		}
	}
	mapping := make([]int32, t.k)
	usedG := make(map[int32]bool, t.k)
	var dfs func(idx int) bool
	dfs = func(idx int) bool {
		if idx == t.k {
			return true
		}
		tv := order[idx]
		var candidates []int32
		if attach[tv] < 0 {
			candidates = nil // all graph vertices; handled below
		} else {
			candidates = g.Neighbors(mapping[attach[tv]])
		}
		try := func(gv int32) bool {
			if usedG[gv] {
				return false
			}
			// check edges to all already-mapped template neighbors
			for _, tn := range t.adj[tv] {
				mapped := false
				for _, ov := range order[:idx] {
					if ov == tn {
						mapped = true
						break
					}
				}
				if mapped && !g.HasEdge(gv, mapping[tn]) {
					return false
				}
			}
			usedG[gv] = true
			mapping[tv] = gv
			if dfs(idx + 1) {
				return true
			}
			delete(usedG, gv)
			return false
		}
		if candidates == nil {
			for gv := int32(0); gv < int32(n); gv++ {
				if try(gv) {
					return true
				}
			}
			return false
		}
		for _, gv := range candidates {
			if try(gv) {
				return true
			}
		}
		return false
	}
	return dfs(0)
}
