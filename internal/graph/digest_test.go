package graph

import (
	"math/rand"
	"testing"
)

// TestDigestInsertionOrderInvariant: any edge-insertion order that
// builds the same CSR must digest identically — the property the
// result cache depends on.
func TestDigestInsertionOrderInvariant(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}, {0, 2}}
	want := FromEdges(5, edges).Digest()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(edges))
		b := NewBuilder(5)
		for _, i := range perm {
			u, v := edges[i][0], edges[i][1]
			if trial%2 == 1 {
				u, v = v, u // reversed endpoints build the same CSR too
			}
			b.AddEdge(u, v)
		}
		if got := b.Build().Digest(); got != want {
			t.Fatalf("trial %d: digest %#x, want %#x", trial, got, want)
		}
	}
	// Duplicates and self-loops are dropped by Build, so they cannot
	// perturb the digest either.
	b := NewBuilder(5)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
		b.AddEdge(e[0], e[1])
	}
	b.AddEdge(2, 2)
	if got := b.Build().Digest(); got != want {
		t.Fatalf("dup/self-loop build: digest %#x, want %#x", got, want)
	}
}

// TestDigestStable pins the digest of a fixed graph so accidental
// algorithm changes (which would invalidate every persisted cache key)
// fail loudly.
func TestDigestStable(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	first := g.Digest()
	if second := g.Digest(); second != first {
		t.Fatalf("repeated Digest differs: %#x vs %#x", first, second)
	}
	if first == 0 {
		t.Fatal("digest is zero, suspicious")
	}
}

// TestDigestDistinguishes: different structure, weights, baselines, or
// vertex counts give different digests.
func TestDigestDistinguishes(t *testing.T) {
	base := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	seen := map[uint64]string{base.Digest(): "base"}

	add := func(name string, g *Graph) {
		t.Helper()
		d := g.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("%s collides with %s (%#x)", name, prev, d)
		}
		seen[d] = name
	}

	add("extra edge", FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 3}}))
	add("more vertices", FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}}))

	weighted := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	weighted.SetWeights([]int64{1, 0, 0, 0})
	add("weighted", weighted)

	baselined := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	baselined.SetBaselines([]int64{1, 0, 0, 0})
	add("baselined", baselined)

	zeroW := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	zeroW.SetWeights([]int64{0, 0, 0, 0})
	add("zero weights attached", zeroW)

	// Generators are seeded-deterministic, so their digests are too.
	if RandomNLogN(200, 3).Digest() != RandomNLogN(200, 3).Digest() {
		t.Fatal("same-seed generator digests differ")
	}
	if RandomNLogN(200, 3).Digest() == RandomNLogN(200, 4).Digest() {
		t.Fatal("different-seed generator digests collide")
	}
}
