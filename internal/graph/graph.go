// Package graph provides the compressed-sparse-row graph representation,
// synthetic generators for the paper's datasets (Table II analogues),
// edge-list IO, the k-Tree template type, and the traversal utilities the
// rest of the repository builds on.
//
// Graphs are simple and undirected: self-loops and parallel edges are
// dropped at build time, and each undirected edge {u,v} is stored twice
// (u→v and v→u), so Degree(v) is the true undirected degree and the DP
// loops can iterate "incoming messages" exactly as the paper's
// pseudo-code does.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected graph in CSR form.
type Graph struct {
	offsets []int64 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32
	weights []int64 // optional per-node event weights (scan statistics); nil if unweighted
	base    []int64 // optional per-node baseline counts; nil if absent
	labels  []int32 // optional per-node colors (motif detection); nil if unlabeled
}

// NumVertices returns n.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// AdjOffset returns the CSR offset of v's adjacency, i.e. the number of
// directed edges incident to vertices < v. Valid for v in [0, n]:
// AdjOffset(n) is the total directed edge count. Because the offsets
// array is exactly the degree prefix sum, schedulers use it to cut
// edge-balanced vertex ranges in O(log n) (internal/mld's
// parallelVertices).
func (g *Graph) AdjOffset(v int32) int64 { return g.offsets[v] }

// Neighbors returns the (sorted) adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	nbr := g.Neighbors(u)
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
	return i < len(nbr) && nbr[i] == v
}

// Weight returns the event weight of v (0 if the graph is unweighted).
func (g *Graph) Weight(v int32) int64 {
	if g.weights == nil {
		return 0
	}
	return g.weights[v]
}

// Baseline returns the baseline count of v (1 if absent, matching the
// unit-baseline reduction described in DESIGN.md §2).
func (g *Graph) Baseline(v int32) int64 {
	if g.base == nil {
		return 1
	}
	return g.base[v]
}

// Weighted reports whether per-node event weights are attached.
func (g *Graph) Weighted() bool { return g.weights != nil }

// TotalWeight returns Σ_v w(v).
func (g *Graph) TotalWeight() int64 {
	var s int64
	for _, w := range g.weights {
		s += w
	}
	return s
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// SetWeights attaches per-node event weights. len(w) must equal n.
func (g *Graph) SetWeights(w []int64) {
	if len(w) != g.NumVertices() {
		panic(fmt.Sprintf("graph: SetWeights got %d weights for %d vertices", len(w), g.NumVertices()))
	}
	g.weights = w
}

// SetBaselines attaches per-node baseline counts. len(b) must equal n.
func (g *Graph) SetBaselines(b []int64) {
	if len(b) != g.NumVertices() {
		panic(fmt.Sprintf("graph: SetBaselines got %d baselines for %d vertices", len(b), g.NumVertices()))
	}
	g.base = b
}

// Weights returns the weight slice (nil if unweighted). Read-only.
func (g *Graph) Weights() []int64 { return g.weights }

// Label returns the color of v (0 if the graph is unlabeled).
func (g *Graph) Label(v int32) int32 {
	if g.labels == nil {
		return 0
	}
	return g.labels[v]
}

// Labeled reports whether per-node colors are attached.
func (g *Graph) Labeled() bool { return g.labels != nil }

// SetLabels attaches per-node colors. len(l) must equal n.
func (g *Graph) SetLabels(l []int32) {
	if len(l) != g.NumVertices() {
		panic(fmt.Sprintf("graph: SetLabels got %d labels for %d vertices", len(l), g.NumVertices()))
	}
	g.labels = l
}

// Labels returns the label slice (nil if unlabeled). Read-only.
func (g *Graph) Labels() []int32 { return g.labels }

// Offsets returns the CSR offset array (length n+1). Read-only: the
// slice aliases internal — possibly externally-owned, see FromCSR —
// storage.
func (g *Graph) Offsets() []int64 { return g.offsets }

// Adj returns the CSR adjacency array (length 2m). Read-only, like
// Offsets.
func (g *Graph) Adj() []int32 { return g.adj }

// Baselines returns the baseline slice (nil if absent). Read-only.
func (g *Graph) Baselines() []int64 { return g.base }

// FromCSR wraps prebuilt CSR arrays in a Graph without copying them.
// The slices may be externally owned — internal/store passes views
// straight into an mmap'd file — and the caller must keep them valid
// and unmodified for the Graph's lifetime. Only O(1) shape checks run
// here (the zero-copy open path must not touch every edge); use
// ValidateCSR for the full structural check of untrusted arrays.
//
// offsets must have length n+1; adj holds both directions of every
// edge; weights, base, and labels are optional (nil) and must have
// length n when present.
func FromCSR(offsets []int64, adj []int32, weights, base []int64, labels []int32) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: FromCSR needs a non-empty offsets array")
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: FromCSR offsets end %d != len(adj) %d", offsets[n], len(adj))
	}
	check := func(name string, l int) error {
		if l != 0 && l != n {
			return fmt.Errorf("graph: FromCSR %d %s for %d vertices", l, name, n)
		}
		return nil
	}
	if err := check("weights", len(weights)); err != nil {
		return nil, err
	}
	if err := check("baselines", len(base)); err != nil {
		return nil, err
	}
	if err := check("labels", len(labels)); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, adj: adj, weights: weights, base: base, labels: labels}, nil
}

// ValidateCSR runs the O(n+m) structural check FromCSR skips: monotone
// offsets and in-range adjacency entries. A graph passing this cannot
// drive the DP loops out of bounds.
func (g *Graph) ValidateCSR() error {
	n := int64(g.NumVertices())
	for i := 1; i < len(g.offsets); i++ {
		if g.offsets[i] < g.offsets[i-1] {
			return fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	for i, a := range g.adj {
		if a < 0 || int64(a) >= n {
			return fmt.Errorf("graph: adjacency entry %d (index %d) out of range [0,%d)", a, i, n)
		}
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d weighted=%v}", g.NumVertices(), g.NumEdges(), g.weights != nil)
}

// Builder accumulates edges and produces a Graph. The zero value is not
// usable; construct with NewBuilder.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v}. Self-loops and duplicates
// are tolerated here and dropped in Build.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// NumPendingEdges reports how many edge records have been added
// (including duplicates and self-loops that Build will drop).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the CSR graph: both directions of every edge, sorted
// adjacency, no self-loops, no parallel edges.
func (b *Builder) Build() *Graph {
	type half struct{ src, dst int32 }
	halves := make([]half, 0, 2*len(b.edges))
	for _, e := range b.edges {
		if e[0] == e[1] {
			continue
		}
		halves = append(halves, half{e[0], e[1]}, half{e[1], e[0]})
	}
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].src != halves[j].src {
			return halves[i].src < halves[j].src
		}
		return halves[i].dst < halves[j].dst
	})
	g := &Graph{offsets: make([]int64, b.n+1)}
	g.adj = make([]int32, 0, len(halves))
	var prev half
	first := true
	for _, h := range halves {
		if !first && h == prev {
			continue // parallel edge
		}
		first = false
		prev = h
		g.adj = append(g.adj, h.dst)
		g.offsets[h.src+1]++
	}
	for i := 1; i <= b.n; i++ {
		g.offsets[i] += g.offsets[i-1]
	}
	return g
}

// FromEdges builds a graph on n vertices directly from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Edges returns every undirected edge once, as (u,v) with u < v.
func (g *Graph) Edges() [][2]int32 {
	out := make([][2]int32, 0, g.NumEdges())
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]int32{u, v})
			}
		}
	}
	return out
}

// InducedSubgraph returns the subgraph induced on keep (which must not
// contain duplicates), together with the mapping from new ids to old.
// Weights and baselines are carried over.
func (g *Graph) InducedSubgraph(keep []int32) (*Graph, []int32) {
	newID := make(map[int32]int32, len(keep))
	for i, v := range keep {
		if _, dup := newID[v]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", v))
		}
		newID[v] = int32(i)
	}
	b := NewBuilder(len(keep))
	for _, v := range keep {
		nv := newID[v]
		for _, u := range g.Neighbors(v) {
			if nu, ok := newID[u]; ok && nv < nu {
				b.AddEdge(nv, nu)
			}
		}
	}
	sub := b.Build()
	if g.weights != nil {
		w := make([]int64, len(keep))
		for i, v := range keep {
			w[i] = g.weights[v]
		}
		sub.weights = w
	}
	if g.base != nil {
		bb := make([]int64, len(keep))
		for i, v := range keep {
			bb[i] = g.base[v]
		}
		sub.base = bb
	}
	if g.labels != nil {
		ll := make([]int32, len(keep))
		for i, v := range keep {
			ll[i] = g.labels[v]
		}
		sub.labels = ll
	}
	old := make([]int32, len(keep))
	copy(old, keep)
	return sub, old
}

// DeleteVertices returns the subgraph with the given vertices removed,
// plus the new→old id mapping. Used by witness extraction.
func (g *Graph) DeleteVertices(drop map[int32]bool) (*Graph, []int32) {
	keep := make([]int32, 0, g.NumVertices())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if !drop[v] {
			keep = append(keep, v)
		}
	}
	return g.InducedSubgraph(keep)
}
