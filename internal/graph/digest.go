package graph

// Digest is a stable 64-bit content hash of the graph: a function of
// the CSR arrays (offsets, adjacency) and the attached weight and
// baseline vectors, nothing else. Two graphs with identical CSR form —
// however their edges were inserted — digest identically, and the
// value is stable across process runs and builds (no map iteration, no
// address-dependent state feeds it). The serving layer uses it as the
// graph component of result-cache and partition-cache keys
// (docs/SERVING.md), so cached answers can never be served for a
// different graph that happens to share a name.
//
// The hash is FNV-1a over a tagged little-endian byte stream. Section
// tags separate the arrays so that, e.g., moving a value from the
// weight vector to the baseline vector cannot collide trivially.
func (g *Graph) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	u64 := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= prime64
		}
	}
	tag := func(t byte) {
		h ^= uint64(t)
		h *= prime64
	}

	tag('n')
	u64(uint64(g.NumVertices()))
	tag('o')
	for _, o := range g.offsets {
		u64(uint64(o))
	}
	tag('a')
	for _, v := range g.adj {
		u64(uint64(uint32(v)))
	}
	if g.weights != nil {
		tag('w')
		for _, w := range g.weights {
			u64(uint64(w))
		}
	}
	if g.base != nil {
		tag('b')
		for _, b := range g.base {
			u64(uint64(b))
		}
	}
	if g.labels != nil {
		tag('l')
		for _, l := range g.labels {
			u64(uint64(uint32(l)))
		}
	}
	return h
}
