package pregel

import (
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

// This file implements multilinear detection as vertex programs — the
// algorithm of reference [19], which the paper's Giraph-based baseline
// ran. The arithmetic is identical to internal/mld (same assignments,
// same fingerprints), so results agree exactly with the sequential
// detector; what differs is the execution style: one superstep per DP
// level, one materialized message per edge per level, neighbor values
// retained in per-vertex state. Those costs are the baseline's handicap
// in the paper's comparison.

// Options configures the pregel-based detectors.
type Options struct {
	Seed    uint64
	Epsilon float64
	Rounds  int
	N2      int // iteration batch width per engine run
	Workers int
}

func (o Options) mld() mld.Options {
	return mld.Options{Seed: o.Seed, Epsilon: o.Epsilon, Rounds: o.Rounds, N2: o.N2}
}

// pathState is the per-vertex DP state for the k-path program.
type pathState struct {
	base []gf.Elem
	p    []gf.Elem
}

// pathMsg carries a neighbor's level vector; Src is needed for the
// fingerprint coefficient.
type pathMsg struct {
	Src int32
	Vec []gf.Elem
}

type pathProgram struct {
	k      int
	a      *mld.Assignment
	q0     uint64
	nb     int
	noGray bool
}

func (pp *pathProgram) Init(id int32) pathState { return pathState{} }

func (pp *pathProgram) Compute(ctx *Context[pathMsg], id int32, st *pathState, msgs []pathMsg) bool {
	if ctx.Superstep() == 0 {
		st.base = make([]gf.Elem, pp.nb)
		st.p = make([]gf.Elem, pp.nb)
		pp.a.FillBase(st.base, id, pp.q0, pp.noGray)
		copy(st.p, st.base)
		if pp.k == 1 {
			var tot gf.Elem
			for _, e := range st.p {
				tot ^= e
			}
			ctx.Aggregate(uint64(tot))
			return true
		}
		ctx.SendToNeighbors(pathMsg{Src: id, Vec: append([]gf.Elem(nil), st.p...)})
		return false
	}
	level := ctx.Superstep() + 1 // computing P(·, level)
	for i := range st.p {
		st.p[i] = 0
	}
	for _, m := range msgs {
		r := pp.a.EdgeCoeff(m.Src, id, level)
		gf.MulSlice16(st.p, m.Vec, r)
	}
	gf.HadamardInto(st.p, st.p, st.base)
	if level == pp.k {
		var tot gf.Elem
		for _, e := range st.p {
			tot ^= e
		}
		ctx.Aggregate(uint64(tot))
		return true
	}
	ctx.SendToNeighbors(pathMsg{Src: id, Vec: append([]gf.Elem(nil), st.p...)})
	return false
}

// DetectPath decides k-path existence with the vertex-centric engine.
// Answers agree exactly (per seed and round) with mld.DetectPath.
// It also returns the accumulated BSP statistics.
func DetectPath(g *graph.Graph, k int, opt Options) (bool, Stats, error) {
	var stats Stats
	if err := mld.ValidateK(k); err != nil {
		return false, stats, err
	}
	if k > g.NumVertices() {
		return false, stats, nil
	}
	mopt := opt.mld()
	rounds := mopt.RoundsFor(k)
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	n2 := opt.N2
	if n2 <= 0 {
		n2 = 128
	}
	if total := uint64(1) << uint(k); uint64(n2) > total {
		n2 = int(total)
	}
	iters := uint64(1) << uint(k)
	for round := 0; round < rounds; round++ {
		a := mld.NewPathAssignment(g.NumVertices(), k, opt.Seed, round)
		var total uint64
		for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			prog := &pathProgram{k: k, a: a, q0: q0, nb: nb}
			eng := NewEngine[pathState, pathMsg](g, prog,
				WithWorkers[pathState, pathMsg](workers),
				WithAggregator[pathState, pathMsg](0, func(x, y uint64) uint64 { return x ^ y }))
			st, agg := eng.Run(k + 1)
			stats.Supersteps += st.Supersteps
			stats.Messages += st.Messages
			stats.ComputeCalls += st.ComputeCalls
			total ^= agg
		}
		if total != 0 {
			return true, stats, nil
		}
	}
	return false, stats, nil
}

// treeState is the per-vertex DP state of the k-tree program: one value
// vector per decomposition subtree, plus retained neighbor vectors for
// subtrees consumed as right children.
type treeState struct {
	base []gf.Elem
	vals [][]gf.Elem           // by decomposition node
	nbr  map[int32][][]gf.Elem // src → by decomposition node
}

type treeMsg struct {
	Src  int32
	Node int
	Vec  []gf.Elem
}

type treeProgram struct {
	d  *graph.Decomposition
	a  *mld.Assignment
	q0 uint64
	nb int
	// isRight[j]: subtree j is read at neighbor vertices and must be
	// messaged when computed.
	isRight []bool
}

func newTreeProgram(d *graph.Decomposition, a *mld.Assignment, q0 uint64, nb int) *treeProgram {
	tp := &treeProgram{d: d, a: a, q0: q0, nb: nb, isRight: make([]bool, len(d.Nodes))}
	for _, nd := range d.Nodes {
		if nd.Right >= 0 {
			tp.isRight[nd.Right] = true
		}
	}
	return tp
}

func (tp *treeProgram) Init(id int32) treeState { return treeState{} }

// Compute evaluates decomposition node s at superstep s (children have
// smaller indices, so they are already available — locally for Left,
// from messages for Right).
func (tp *treeProgram) Compute(ctx *Context[treeMsg], id int32, st *treeState, msgs []treeMsg) bool {
	if ctx.Superstep() == 0 {
		st.base = make([]gf.Elem, tp.nb)
		tp.a.FillBase(st.base, id, tp.q0, false)
		st.vals = make([][]gf.Elem, len(tp.d.Nodes))
		st.nbr = map[int32][][]gf.Elem{}
	}
	for _, m := range msgs {
		if st.nbr[m.Src] == nil {
			st.nbr[m.Src] = make([][]gf.Elem, len(tp.d.Nodes))
		}
		st.nbr[m.Src][m.Node] = m.Vec
	}
	j := ctx.Superstep()
	if j >= len(tp.d.Nodes) {
		return true
	}
	nd := tp.d.Nodes[j]
	var val []gf.Elem
	if nd.Left < 0 {
		val = st.base
	} else {
		val = make([]gf.Elem, tp.nb)
		acc := make([]gf.Elem, tp.nb)
		rightLeaf := tp.d.Nodes[nd.Right].Left < 0
		for _, u := range ctx.Neighbors() {
			var src []gf.Elem
			if rightLeaf {
				// leaf values are the base, computable locally for any
				// vertex — the one message the framework can skip.
				src = make([]gf.Elem, tp.nb)
				tp.a.FillBase(src, u, tp.q0, false)
			} else if st.nbr[u] != nil {
				src = st.nbr[u][nd.Right]
			}
			if src == nil {
				continue
			}
			r := tp.a.EdgeCoeff(u, id, j)
			gf.MulSlice16(acc, src, r)
		}
		gf.HadamardInto(val, st.vals[nd.Left], acc)
	}
	st.vals[j] = val
	if tp.isRight[j] && !(nd.Left < 0) && j != tp.d.Root {
		ctx.SendToNeighbors(treeMsg{Src: id, Node: j, Vec: val})
	}
	if j == tp.d.Root {
		var tot gf.Elem
		for _, e := range val {
			tot ^= e
		}
		ctx.Aggregate(uint64(tot))
		return true
	}
	return false
}

// DetectTree decides k-tree embedding existence with the vertex-centric
// engine; answers agree exactly with mld.DetectTree for the same seed.
func DetectTree(g *graph.Graph, tpl *graph.Template, opt Options) (bool, Stats, error) {
	var stats Stats
	k := tpl.K()
	if err := mld.ValidateK(k); err != nil {
		return false, stats, err
	}
	if k > g.NumVertices() {
		return false, stats, nil
	}
	d := tpl.Decompose()
	mopt := opt.mld()
	rounds := mopt.RoundsFor(k)
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	n2 := opt.N2
	if n2 <= 0 {
		n2 = 128
	}
	if total := uint64(1) << uint(k); uint64(n2) > total {
		n2 = int(total)
	}
	iters := uint64(1) << uint(k)
	for round := 0; round < rounds; round++ {
		a := mld.NewTreeAssignment(g.NumVertices(), k, opt.Seed, round)
		var total uint64
		for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			prog := newTreeProgram(d, a, q0, nb)
			eng := NewEngine[treeState, treeMsg](g, prog,
				WithWorkers[treeState, treeMsg](workers),
				WithAggregator[treeState, treeMsg](0, func(x, y uint64) uint64 { return x ^ y }))
			st, agg := eng.Run(len(d.Nodes) + 1)
			stats.Supersteps += st.Supersteps
			stats.Messages += st.Messages
			stats.ComputeCalls += st.ComputeCalls
			total ^= agg
		}
		if total != 0 {
			return true, stats, nil
		}
	}
	return false, stats, nil
}

// scanState retains, Giraph-style, both the vertex's own DP table and
// every neighbor value received so far (levels are needed repeatedly by
// later levels, so they must be kept).
type scanState struct {
	base []gf.Elem
	// own[jj][z] and nbr[src][jj][z] are nb-wide vectors (nil when zero)
	own map[int]map[int64][]gf.Elem
	nbr map[int32]map[int]map[int64][]gf.Elem
}

type scanMsg struct {
	Src   int32
	Level int
	Vecs  map[int64][]gf.Elem
}

type scanProgram struct {
	j    int // target subgraph size
	zmax int64
	a    *mld.Assignment
	q0   uint64
	nb   int
	g    *graph.Graph
}

func (sp *scanProgram) Init(id int32) scanState { return scanState{} }

func (sp *scanProgram) Compute(ctx *Context[scanMsg], id int32, st *scanState, msgs []scanMsg) bool {
	if ctx.Superstep() == 0 {
		st.base = make([]gf.Elem, sp.nb)
		sp.a.FillBase(st.base, id, sp.q0, false)
		st.own = map[int]map[int64][]gf.Elem{1: {}}
		st.nbr = map[int32]map[int]map[int64][]gf.Elem{}
		w := sp.g.Weight(id)
		if w <= sp.zmax {
			vec := append([]gf.Elem(nil), st.base...)
			st.own[1][w] = vec
			if sp.j > 1 {
				ctx.SendToNeighbors(scanMsg{Src: id, Level: 1, Vecs: map[int64][]gf.Elem{w: vec}})
			}
		}
		return sp.j == 1
	}
	// store incoming level vectors
	for _, m := range msgs {
		if st.nbr[m.Src] == nil {
			st.nbr[m.Src] = map[int]map[int64][]gf.Elem{}
		}
		st.nbr[m.Src][m.Level] = m.Vecs
	}
	jj := ctx.Superstep() + 1 // computing level jj
	if jj > sp.j {
		return true
	}
	lvl := map[int64][]gf.Elem{}
	for jp := 1; jp < jj; jp++ {
		jr := jj - jp
		ownLvl := st.own[jp]
		if ownLvl == nil {
			continue
		}
		for zp, src1 := range ownLvl {
			for _, u := range ctx.Neighbors() {
				uLvls := st.nbr[u]
				if uLvls == nil {
					continue
				}
				r := sp.a.ScanCoeff(u, id, jj, jp, zp)
				for zr, src2 := range uLvls[jr] {
					z := zp + zr
					if z > sp.zmax {
						continue
					}
					dst := lvl[z]
					if dst == nil {
						dst = make([]gf.Elem, sp.nb)
						lvl[z] = dst
					}
					gf.MulHadamardAccumScaled(dst, src1, src2, r)
				}
			}
		}
	}
	st.own[jj] = lvl
	if jj == sp.j {
		return true
	}
	if len(lvl) > 0 {
		ctx.SendToNeighbors(scanMsg{Src: id, Level: jj, Vecs: lvl})
	}
	return false
}

// ScanTable computes the scan-statistics feasibility table with the
// vertex-centric engine; results agree exactly with mld.ScanTable for
// the same seed and rounds.
func ScanTable(g *graph.Graph, k int, zmax int64, opt Options) ([][]bool, Stats, error) {
	var stats Stats
	if err := mld.ValidateK(k); err != nil {
		return nil, stats, err
	}
	feas := make([][]bool, k+1)
	for j := 1; j <= k; j++ {
		feas[j] = make([]bool, zmax+1)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	mopt := opt.mld()
	for j := 1; j <= k && j <= g.NumVertices(); j++ {
		n2 := opt.N2
		if n2 <= 0 {
			n2 = 64
		}
		iters := uint64(1) << uint(j)
		if total := iters; uint64(n2) > total {
			n2 = int(total)
		}
		rounds := mopt.RoundsFor(j)
		for round := 0; round < rounds; round++ {
			a := mld.NewScanAssignment(g.NumVertices(), j, opt.Seed, round)
			totals := make([]gf.Elem, zmax+1)
			for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
				nb := n2
				if rem := iters - q0; uint64(nb) > rem {
					nb = int(rem)
				}
				prog := &scanProgram{j: j, zmax: zmax, a: a, q0: q0, nb: nb, g: g}
				eng := NewEngine[scanState, scanMsg](g, prog,
					WithWorkers[scanState, scanMsg](workers))
				st, _ := eng.Run(j + 1)
				stats.Supersteps += st.Supersteps
				stats.Messages += st.Messages
				stats.ComputeCalls += st.ComputeCalls
				for v := 0; v < g.NumVertices(); v++ {
					lvl := eng.State(int32(v)).own[j]
					for z, vec := range lvl {
						for _, e := range vec {
							totals[z] ^= e
						}
					}
				}
			}
			for z := int64(0); z <= zmax; z++ {
				if totals[z] != 0 {
					feas[j][z] = true
				}
			}
		}
	}
	return feas, stats, nil
}
