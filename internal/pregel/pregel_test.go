package pregel

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/rng"
)

// --- framework semantics, via small classic programs ---

// bfsProgram computes BFS distances: classic Pregel hello-world.
type bfsState struct{ dist int32 }

type bfsProgram struct{ src int32 }

func (b *bfsProgram) Init(id int32) bfsState { return bfsState{dist: -1} }

func (b *bfsProgram) Compute(ctx *Context[int32], id int32, st *bfsState, msgs []int32) bool {
	if ctx.Superstep() == 0 {
		if id == b.src {
			st.dist = 0
			ctx.SendToNeighbors(1)
		}
		return true
	}
	if st.dist >= 0 {
		return true
	}
	best := int32(-1)
	for _, m := range msgs {
		if best < 0 || m < best {
			best = m
		}
	}
	if best >= 0 {
		st.dist = best
		ctx.SendToNeighbors(best + 1)
	}
	return true
}

func TestBFSProgramMatchesGraphBFS(t *testing.T) {
	g := graph.RandomGNM(60, 150, 3)
	want := graph.BFS(g, 7)
	for _, workers := range []int{1, 4} {
		eng := NewEngine[bfsState, int32](g, &bfsProgram{src: 7},
			WithWorkers[bfsState, int32](workers))
		stats, _ := eng.Run(100)
		for v := 0; v < 60; v++ {
			if eng.State(int32(v)).dist != want[v] {
				t.Fatalf("workers=%d: dist[%d] = %d, want %d", workers, v, eng.State(int32(v)).dist, want[v])
			}
		}
		if stats.Supersteps == 0 || stats.Messages == 0 {
			t.Fatalf("stats empty: %+v", stats)
		}
	}
}

func TestHaltTerminatesEarly(t *testing.T) {
	g := graph.Path(5)
	eng := NewEngine[bfsState, int32](g, &bfsProgram{src: 0})
	stats, _ := eng.Run(1000)
	// P5 BFS completes in 5 supersteps of activity (plus the final
	// quiet check), far below the 1000 cap.
	if stats.Supersteps > 10 {
		t.Fatalf("no early termination: %d supersteps", stats.Supersteps)
	}
}

// degreeSum exercises the aggregator: every vertex contributes its
// degree in superstep 0.
type aggProgram struct{}

func (aggProgram) Init(id int32) struct{} { return struct{}{} }
func (aggProgram) Compute(ctx *Context[struct{}], id int32, st *struct{}, msgs []struct{}) bool {
	if ctx.Superstep() == 0 {
		ctx.Aggregate(uint64(len(ctx.Neighbors())))
		return false
	}
	// aggregate from the previous superstep is now visible
	if ctx.PrevAggregate() == 0 {
		panic("aggregate not visible")
	}
	return true
}

func TestAggregator(t *testing.T) {
	g := graph.Cycle(10)
	eng := NewEngine[struct{}, struct{}](g, aggProgram{},
		WithAggregator[struct{}, struct{}](0, func(a, b uint64) uint64 { return a + b }))
	_, agg := eng.Run(3)
	if agg != 20 {
		t.Fatalf("degree sum aggregate = %d, want 20", agg)
	}
}

// combiner test: sum-combine messages so each vertex sees one message.
type combState struct{ got int }

type combProgram struct{}

func (combProgram) Init(id int32) combState { return combState{} }
func (combProgram) Compute(ctx *Context[uint64], id int32, st *combState, msgs []uint64) bool {
	if ctx.Superstep() == 0 {
		ctx.SendToNeighbors(uint64(id + 1))
		return false
	}
	st.got = len(msgs)
	var sum uint64
	for _, m := range msgs {
		sum += m
	}
	ctx.Aggregate(sum)
	return true
}

func TestCombinerMergesMessages(t *testing.T) {
	g := graph.Star(6) // center receives 5 messages
	eng := NewEngine[combState, uint64](g, combProgram{},
		WithCombiner[combState, uint64](func(a, b uint64) uint64 { return a + b }),
		WithAggregator[combState, uint64](0, func(a, b uint64) uint64 { return a + b }))
	_, agg := eng.Run(3)
	if got := eng.State(0).got; got != 1 {
		t.Fatalf("center saw %d messages, combiner should merge to 1", got)
	}
	// sum of leaf ids+1 delivered to center, plus center's id+1 to each leaf
	want := uint64(2+3+4+5+6) + 5*1
	if agg != want {
		t.Fatalf("aggregate %d want %d", agg, want)
	}
}

// --- multilinear programs vs sequential mld ---

func TestPregelPathMatchesSequential(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomGNM(20, 45, r.Uint64())
		k := 2 + r.Intn(4)
		seed := r.Uint64()
		want, err := mld.DetectPath(g, k, mld.Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, n2 := range []int{1, 4, 1 << uint(k)} {
			got, stats, err := DetectPath(g, k, Options{Seed: seed, Rounds: 1, N2: n2, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d k=%d n2=%d: pregel %v sequential %v", trial, k, n2, got, want)
			}
			if want && stats.Messages == 0 && k > 1 {
				t.Fatal("no messages materialized")
			}
		}
	}
}

func TestPregelPathValidation(t *testing.T) {
	g := graph.Path(4)
	if _, _, err := DetectPath(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if got, _, err := DetectPath(g, 9, Options{}); err != nil || got {
		t.Fatalf("k>n should be no: %v %v", got, err)
	}
}

func TestPregelScanMatchesSequential(t *testing.T) {
	g := graph.RandomGNM(12, 25, 6)
	w := make([]int64, 12)
	r := rng.New(2)
	for i := range w {
		w[i] = int64(r.Intn(3))
	}
	g.SetWeights(w)
	const k, zmax = 3, 5
	want, err := mld.ScanTable(g, k, zmax, mld.Options{Seed: 5, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ScanTable(g, k, zmax, Options{Seed: 5, Rounds: 1, N2: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= k; j++ {
		for z := 0; z <= zmax; z++ {
			if got[j][z] != want[j][z] {
				t.Fatalf("cell (%d,%d): pregel %v sequential %v", j, z, got[j][z], want[j][z])
			}
		}
	}
	if stats.Messages == 0 {
		t.Fatal("scan program sent no messages")
	}
}

func TestPregelScanAgainstBruteForce(t *testing.T) {
	g := graph.Grid(3, 3)
	g.SetWeights([]int64{1, 0, 1, 0, 2, 0, 1, 0, 1})
	const k, zmax = 3, 4
	want := mld.BruteScanTable(g, k, zmax)
	got, _, err := ScanTable(g, k, zmax, Options{Seed: 8, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= k; j++ {
		for z := 0; z <= zmax; z++ {
			if got[j][z] != want[j][z] {
				t.Fatalf("cell (%d,%d): pregel %v brute %v", j, z, got[j][z], want[j][z])
			}
		}
	}
}

func TestPregelMessageCountScalesWithEdges(t *testing.T) {
	// The framework's handicap: per-level per-edge messages. For k
	// levels, expect ≈ (k-1)·2m messages per batch (every vertex sends
	// to all neighbors at levels 1..k-1).
	g := graph.Cycle(30)
	k := 4
	_, stats, err := DetectPath(g, k, Options{Seed: 1, Rounds: 1, N2: 1 << uint(k)})
	if err != nil {
		t.Fatal(err)
	}
	want := int64((k - 1) * 2 * g.NumEdges())
	if stats.Messages != want {
		t.Fatalf("messages = %d, want %d", stats.Messages, want)
	}
}

func BenchmarkPregelPathK8(b *testing.B) {
	g := graph.RandomNLogN(300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DetectPath(g, 8, Options{Seed: uint64(i), Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPregelTreeMatchesSequential(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomGNM(18, 40, r.Uint64())
		k := 2 + r.Intn(4)
		tpl := graph.RandomTemplate(k, r.Uint64())
		seed := r.Uint64()
		want, err := mld.DetectTree(g, tpl, mld.Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DetectTree(g, tpl, Options{Seed: seed, Rounds: 1, N2: 4, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d k=%d: pregel %v sequential %v", trial, k, got, want)
		}
	}
}

func TestPregelTreeKnownCases(t *testing.T) {
	grid := graph.Grid(3, 3)
	cases := []struct {
		tpl  *graph.Template
		want bool
	}{
		{graph.StarTemplate(5), true},
		{graph.StarTemplate(6), false},
		{graph.PathTemplate(9), true},
		{graph.MustTemplate(1, nil), true},
	}
	for i, tc := range cases {
		got, _, err := DetectTree(grid, tc.tpl, Options{Seed: 3, Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}
