// Package pregel is a vertex-centric bulk-synchronous-parallel graph
// framework in the style of Pregel/Giraph. It exists as the faithful
// stand-in for the Giraph baseline of reference [19] ("Fast graph scan
// statistics optimization using algebraic fingerprints"), which the
// paper reports beating by an order of magnitude: programs written
// against it pay the per-edge message materialization and per-superstep
// global barrier that MIDAS's aggregated halo exchange avoids.
//
// Semantics follow Pregel: in superstep s every active vertex receives
// the messages sent to it in superstep s-1, updates its state, sends
// messages along edges, and may vote to halt; a halted vertex is
// reactivated by an incoming message. An optional combiner merges
// messages addressed to the same vertex; aggregators fold a value over
// all vertices each superstep and make the result visible in the next.
package pregel

import (
	"sync"
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/graph"
)

// Program defines vertex behavior. V is the vertex state, M the message
// type.
type Program[V, M any] interface {
	// Init returns the initial state of a vertex; all vertices start
	// active.
	Init(id int32) V
	// Compute processes one superstep for a vertex. It may read
	// incoming messages, mutate *state, send messages via ctx, and
	// return true to vote to halt.
	Compute(ctx *Context[M], id int32, state *V, msgs []M) (halt bool)
}

// Combiner merges two messages bound for the same destination vertex
// (Giraph's message combiner).
type Combiner[M any] func(a, b M) M

// Aggregator folds uint64 values contributed by vertices during a
// superstep; the folded result of superstep s is readable in s+1.
type Aggregator func(a, b uint64) uint64

// Context is handed to Compute for sending messages and aggregation.
type Context[M any] struct {
	engine interface {
		send(dst int32, m M)
		aggregate(v uint64)
	}
	superstep int
	agg       uint64 // previous superstep's aggregate
	g         *graph.Graph
	id        int32
}

// Superstep returns the current superstep index (0-based).
func (c *Context[M]) Superstep() int { return c.superstep }

// SendTo sends a message to vertex dst, delivered next superstep.
func (c *Context[M]) SendTo(dst int32, m M) { c.engine.send(dst, m) }

// SendToNeighbors sends m along every incident edge.
func (c *Context[M]) SendToNeighbors(m M) {
	for _, u := range c.g.Neighbors(c.id) {
		c.engine.send(u, m)
	}
}

// Neighbors exposes the vertex's adjacency.
func (c *Context[M]) Neighbors() []int32 { return c.g.Neighbors(c.id) }

// Aggregate contributes v to this superstep's global aggregate.
func (c *Context[M]) Aggregate(v uint64) { c.engine.aggregate(v) }

// PrevAggregate returns the folded aggregate of the previous superstep.
func (c *Context[M]) PrevAggregate() uint64 { return c.agg }

// Stats reports the cost drivers of a run: BSP supersteps executed and
// total messages materialized (the quantity that separates this
// baseline from MIDAS).
type Stats struct {
	Supersteps   int
	Messages     int64
	ComputeCalls int64
}

const lockStripes = 64

// Engine executes a Program over a graph.
type Engine[V, M any] struct {
	g        *graph.Graph
	prog     Program[V, M]
	workers  int
	combiner Combiner[M]
	aggFn    Aggregator
	aggInit  uint64

	state  []V
	active []bool
	inbox  [][]M
	outbox [][]M
	locks  [lockStripes]sync.Mutex

	aggCur   uint64
	aggPrev  uint64
	aggMu    sync.Mutex
	stats    Stats
	msgCount atomic.Int64
}

// Option customizes an Engine.
type Option[V, M any] func(*Engine[V, M])

// WithWorkers sets the number of vertex-compute workers (default 1).
func WithWorkers[V, M any](w int) Option[V, M] {
	return func(e *Engine[V, M]) {
		if w > 0 {
			e.workers = w
		}
	}
}

// WithCombiner installs a message combiner.
func WithCombiner[V, M any](c Combiner[M]) Option[V, M] {
	return func(e *Engine[V, M]) { e.combiner = c }
}

// WithAggregator installs the global aggregator with its identity value.
func WithAggregator[V, M any](init uint64, f Aggregator) Option[V, M] {
	return func(e *Engine[V, M]) { e.aggInit, e.aggFn = init, f }
}

// NewEngine builds an engine; Run may be called repeatedly (state is
// re-initialized per call).
func NewEngine[V, M any](g *graph.Graph, prog Program[V, M], opts ...Option[V, M]) *Engine[V, M] {
	e := &Engine[V, M]{g: g, prog: prog, workers: 1}
	for _, o := range opts {
		o(e)
	}
	return e
}

func (e *Engine[V, M]) send(dst int32, m M) {
	s := &e.locks[int(dst)%lockStripes]
	s.Lock()
	if e.combiner != nil && len(e.outbox[dst]) > 0 {
		e.outbox[dst][0] = e.combiner(e.outbox[dst][0], m)
	} else {
		e.outbox[dst] = append(e.outbox[dst], m)
	}
	s.Unlock()
	e.msgCount.Add(1)
}

func (e *Engine[V, M]) aggregate(v uint64) {
	e.aggMu.Lock()
	if e.aggFn != nil {
		e.aggCur = e.aggFn(e.aggCur, v)
	}
	e.aggMu.Unlock()
}

// State returns a pointer to a vertex's state; valid after Run (drivers
// read results out of vertex state when a single aggregate is not
// expressive enough).
func (e *Engine[V, M]) State(v int32) *V { return &e.state[v] }

// Run executes up to maxSupersteps supersteps (or until all vertices
// halt with no messages in flight) and returns run statistics plus the
// aggregate folded over every superstep of the run. (PrevAggregate
// inside Compute still exposes only the previous superstep's fold,
// matching Giraph.)
func (e *Engine[V, M]) Run(maxSupersteps int) (Stats, uint64) {
	n := e.g.NumVertices()
	e.state = make([]V, n)
	e.active = make([]bool, n)
	e.inbox = make([][]M, n)
	e.outbox = make([][]M, n)
	for v := 0; v < n; v++ {
		e.state[v] = e.prog.Init(int32(v))
		e.active[v] = true
	}
	e.stats = Stats{}
	e.msgCount.Store(0)
	e.aggPrev = e.aggInit
	runTotal := e.aggInit
	for step := 0; step < maxSupersteps; step++ {
		anyActive := false
		for v := 0; v < n && !anyActive; v++ {
			anyActive = e.active[v] || len(e.inbox[v]) > 0
		}
		if !anyActive {
			break
		}
		e.aggCur = e.aggInit
		e.runSuperstep(step)
		e.stats.Supersteps++
		e.aggPrev = e.aggCur
		if e.aggFn != nil {
			runTotal = e.aggFn(runTotal, e.aggCur)
		}
		// message rotation: this superstep's outbox becomes next inbox
		e.inbox, e.outbox = e.outbox, e.inbox
		for v := range e.outbox {
			e.outbox[v] = e.outbox[v][:0]
		}
	}
	e.stats.Messages = e.msgCount.Load()
	return e.stats, runTotal
}

func (e *Engine[V, M]) runSuperstep(step int) {
	n := e.g.NumVertices()
	var wg sync.WaitGroup
	chunk := (n + e.workers - 1) / e.workers
	var computeCalls int64
	var ccMu sync.Mutex
	for w := 0; w < e.workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var calls int64
			for v := lo; v < hi; v++ {
				msgs := e.inbox[v]
				if !e.active[v] && len(msgs) == 0 {
					continue
				}
				ctx := &Context[M]{engine: e, superstep: step, agg: e.aggPrev, g: e.g, id: int32(v)}
				halt := e.prog.Compute(ctx, int32(v), &e.state[v], msgs)
				e.active[v] = !halt
				e.inbox[v] = e.inbox[v][:0]
				calls++
			}
			ccMu.Lock()
			computeCalls += calls
			ccMu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	e.stats.ComputeCalls += computeCalls
}
