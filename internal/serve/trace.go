package serve

// Request-scoped tracing: every query gets an ID at the HTTP boundary
// (caller-supplied X-Midas-Request-Id or generated) and a QueryTrace —
// a timestamped stage timeline from received through queued, admitted,
// its disposition (solo DP, batched lane, cache hit, singleflight
// join), live DP phase progress, to its terminal state. Traces live in
// the flight recorder: an always-on fixed-size ring of the last N
// completed traces plus every in-flight one, served at
// GET /v1/debug/requests (debug.go) and exportable as a Chrome trace
// lane that stitches visually onto the rank-level flows
// (docs/OBSERVABILITY.md §"Query tracing & flight recorder").

import (
	"strconv"
	"sync"
	"time"

	"github.com/midas-hpc/midas/internal/obs"
)

// Stage names, in lifecycle order. A trace's timeline is monotone:
// stages are appended as they happen, each stamped once.
const (
	StageReceived           = "received"            // request parsed and validated
	StageQueued             = "queued"              // entered the admission queue
	StageAdmitted           = "admitted"            // a worker picked it up
	StageCacheHit           = "cache-hit"           // answered from the result cache
	StageSingleflightJoined = "singleflight-joined" // attached to an identical in-flight DP
	StageBatchAssembled     = "batch-assembled"     // became a lane of a batched execution
	StageDP                 = "dp"                  // DP sweep running (carries phase progress)
	StageDone               = "done"                // terminal: result published
	StageError              = "error"               // terminal: failed, cancelled, or timed out
)

// Dispositions: how the query was ultimately answered.
const (
	DispSolo         = "solo"                // led its own flight, ran the DP alone
	DispBatchedLane  = "batched-lane"        // lane of a multi-query DP execution
	DispCacheHit     = "cache-hit"           // result cache, no DP
	DispSingleflight = "singleflight-joined" // shared an identical in-flight DP
)

// StageEvent is one timestamped point of a query's timeline. The dp
// stage additionally carries live sweep progress, updated in place by
// the evaluators' progress callbacks (mld.Options.Progress /
// core.Config.Progress).
type StageEvent struct {
	Stage string    `json:"stage"`
	At    time.Time `json:"at"`
	// Detail is stage-specific context: the batch lane count on
	// batch-assembled, the error text on error.
	Detail string `json:"detail,omitempty"`
	// Phases/TotalPhases carry DP progress on the dp stage (TotalPhases
	// is the planned single-round sweep length; Phases counts completed
	// phases and may exceed it for multi-round queries).
	Phases      int64 `json:"phases,omitempty"`
	TotalPhases int64 `json:"totalPhases,omitempty"`
}

// QueryTrace records one query's identity and stage timeline. Safe for
// concurrent use: the HTTP handler, the worker, the progress callback,
// and the debug endpoints all touch it.
type QueryTrace struct {
	mu sync.Mutex

	id     string // request ID (caller-supplied or generated)
	jobID  string // job table ID ("" for cache fast-path hits)
	kind   string
	graph  string
	digest uint64
	k      int
	ranks  int

	disposition string
	lanes       int // batch occupancy for batched-lane traces

	status string // terminal job status ("" while in flight)
	errMsg string

	stages []StageEvent
	dpIdx  int // index of the dp stage in stages; -1 before it exists

	seq uint64 // flight-recorder admission order (assigned by start)
}

// newQueryTrace starts a trace for a validated query. received is the
// HTTP-boundary arrival time (stamped by the middleware), so the
// timeline includes decode/validate latency.
func newQueryTrace(id string, received time.Time, req *QueryRequest, digest uint64) *QueryTrace {
	tr := &QueryTrace{
		id: id, kind: req.Kind, graph: req.Graph, digest: digest,
		k: req.K, ranks: req.Ranks, dpIdx: -1,
	}
	tr.stages = append(tr.stages, StageEvent{Stage: StageReceived, At: received})
	return tr
}

// ID returns the trace's request ID.
func (t *QueryTrace) ID() string { return t.id }

// stage appends a plain timeline event.
func (t *QueryTrace) stage(name string) { t.stageDetail(name, "") }

// stageDetail appends a timeline event with stage-specific context.
func (t *QueryTrace) stageDetail(name, detail string) {
	t.mu.Lock()
	t.stages = append(t.stages, StageEvent{Stage: name, At: time.Now(), Detail: detail})
	t.mu.Unlock()
}

// setJob links the trace to its admission-queue job.
func (t *QueryTrace) setJob(id string) {
	t.mu.Lock()
	t.jobID = id
	t.mu.Unlock()
}

// setDisposition records how the query is being answered. The first
// call wins: a batched lane that was first marked solo upgrades, but a
// terminal disposition (cache-hit, singleflight) never changes.
func (t *QueryTrace) setDisposition(d string, lanes int) {
	t.mu.Lock()
	t.disposition = d
	t.lanes = lanes
	t.mu.Unlock()
}

// beginDP opens the dp stage with the planned single-round phase total.
func (t *QueryTrace) beginDP(totalPhases int64) {
	t.mu.Lock()
	t.dpIdx = len(t.stages)
	t.stages = append(t.stages, StageEvent{Stage: StageDP, At: time.Now(), TotalPhases: totalPhases})
	t.mu.Unlock()
}

// progress updates the dp stage's completed-phase count in place (the
// evaluators' per-phase callback; a no-op before beginDP).
func (t *QueryTrace) progress(done int64) {
	t.mu.Lock()
	if t.dpIdx >= 0 && done > t.stages[t.dpIdx].Phases {
		t.stages[t.dpIdx].Phases = done
	}
	t.mu.Unlock()
}

// setDPResult backfills the dp stage's final counters from an execution
// result (batched lanes get their per-lane phase counts this way).
func (t *QueryTrace) setDPResult(phases, totalPhases int64) {
	t.mu.Lock()
	if t.dpIdx >= 0 {
		if phases > t.stages[t.dpIdx].Phases {
			t.stages[t.dpIdx].Phases = phases
		}
		if totalPhases > 0 {
			t.stages[t.dpIdx].TotalPhases = totalPhases
		}
	}
	t.mu.Unlock()
}

// finish closes the timeline with done or error. Idempotent: the first
// terminal stage wins.
func (t *QueryTrace) finish(status string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status != "" {
		return
	}
	t.status = status
	ev := StageEvent{Stage: StageDone, At: time.Now()}
	if err != nil {
		t.errMsg = err.Error()
		ev.Stage = StageError
		ev.Detail = t.errMsg
	}
	t.stages = append(t.stages, ev)
}

// done reports whether the trace reached a terminal stage.
func (t *QueryTrace) done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status != ""
}

// TraceView is the debug API's rendering of one QueryTrace.
type TraceView struct {
	ID          string       `json:"id"`
	JobID       string       `json:"jobId,omitempty"`
	Kind        string       `json:"kind"`
	Graph       string       `json:"graph"`
	Digest      string       `json:"digest"`
	K           int          `json:"k,omitempty"`
	Ranks       int          `json:"ranks,omitempty"`
	Disposition string       `json:"disposition,omitempty"`
	Lanes       int          `json:"lanes,omitempty"`
	Status      string       `json:"status,omitempty"` // "" while in flight
	Error       string       `json:"error,omitempty"`
	Stages      []StageEvent `json:"stages"`
	// Derived stage latencies (milliseconds), for operators who read
	// JSON by eye: queue wait (queued→admitted), DP time (dp→terminal),
	// and the whole timeline's extent so far.
	QueueMillis float64 `json:"queueMillis,omitempty"`
	DPMillis    float64 `json:"dpMillis,omitempty"`
	TotalMillis float64 `json:"totalMillis"`
}

// view snapshots the trace for the debug endpoints.
func (t *QueryTrace) view() TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TraceView{
		ID: t.id, JobID: t.jobID, Kind: t.kind, Graph: t.graph,
		Digest:      strconv.FormatUint(t.digest, 16),
		K:           t.k,
		Ranks:       t.ranks,
		Disposition: t.disposition,
		Lanes:       t.lanes,
		Status:      t.status,
		Error:       t.errMsg,
		Stages:      append([]StageEvent(nil), t.stages...),
	}
	end := time.Now()
	if t.status != "" {
		end = t.stages[len(t.stages)-1].At
	}
	v.TotalMillis = millis(t.stages[0].At, end)
	var queuedAt, admittedAt, dpAt time.Time
	for _, ev := range t.stages {
		switch ev.Stage {
		case StageQueued:
			queuedAt = ev.At
		case StageAdmitted:
			admittedAt = ev.At
		case StageDP:
			dpAt = ev.At
		}
	}
	if !queuedAt.IsZero() && !admittedAt.IsZero() {
		v.QueueMillis = millis(queuedAt, admittedAt)
	}
	if !dpAt.IsZero() {
		v.DPMillis = millis(dpAt, end)
	}
	return v
}

func millis(from, to time.Time) float64 {
	return float64(to.Sub(from)) / float64(time.Millisecond)
}

// flightRecorder is the always-on request recorder: every in-flight
// QueryTrace plus a fixed-size ring of the most recently completed
// ones. Overflowing the ring evicts the oldest completed trace and
// counts it in obs.ServeTraceEvictions.
type flightRecorder struct {
	mu       sync.Mutex
	cap      int
	seq      uint64
	inflight []*QueryTrace
	recent   []*QueryTrace // completed, oldest first
	evicted  int64
}

func newFlightRecorder(capacity int) *flightRecorder {
	return &flightRecorder{cap: capacity}
}

// start registers an in-flight trace.
func (fr *flightRecorder) start(tr *QueryTrace) {
	fr.mu.Lock()
	fr.seq++
	tr.seq = fr.seq
	fr.inflight = append(fr.inflight, tr)
	fr.mu.Unlock()
}

// complete moves a trace from the in-flight set into the completed
// ring, evicting the oldest completed traces past the capacity.
// Returns the number of evictions this call caused.
func (fr *flightRecorder) complete(tr *QueryTrace) int64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for i, f := range fr.inflight {
		if f == tr {
			fr.inflight = append(fr.inflight[:i], fr.inflight[i+1:]...)
			break
		}
	}
	fr.recent = append(fr.recent, tr)
	var ev int64
	for len(fr.recent) > fr.cap {
		fr.recent = fr.recent[1:]
		ev++
	}
	fr.evicted += ev
	return ev
}

// get returns the newest trace with the given request ID — in-flight
// traces win over completed ones, newer over older (caller-supplied
// IDs may repeat).
func (fr *flightRecorder) get(id string) (*QueryTrace, bool) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for i := len(fr.inflight) - 1; i >= 0; i-- {
		if fr.inflight[i].id == id {
			return fr.inflight[i], true
		}
	}
	for i := len(fr.recent) - 1; i >= 0; i-- {
		if fr.recent[i].id == id {
			return fr.recent[i], true
		}
	}
	return nil, false
}

// list snapshots the recorder: in-flight traces and completed ones,
// each newest first.
func (fr *flightRecorder) list() (inflight, recent []*QueryTrace) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	inflight = make([]*QueryTrace, 0, len(fr.inflight))
	for i := len(fr.inflight) - 1; i >= 0; i-- {
		inflight = append(inflight, fr.inflight[i])
	}
	recent = make([]*QueryTrace, 0, len(fr.recent))
	for i := len(fr.recent) - 1; i >= 0; i-- {
		recent = append(recent, fr.recent[i])
	}
	return inflight, recent
}

// stats reports the recorder's occupancy and lifetime evictions.
func (fr *flightRecorder) stats() (inflight, recent int, capacity int, evicted int64) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.inflight), len(fr.recent), fr.cap, fr.evicted
}

// serveTracePid is the pid lane the serve-plane query timeline occupies
// in exported Chrome traces — far from the rank pids (0..N-1), so serve
// stages render as their own process row above the rank-level flows.
const serveTracePid = 1000

// traceSnapshot renders the recorder's traces as a synthetic
// obs.Snapshot in the serve pid lane: per query one depth-0 span named
// by its request ID (tid = arrival order, so concurrent queries occupy
// separate rows) with one depth-1 child span per stage interval.
// base is the snapshot's time zero (the earliest stage of the set is a
// natural choice); in-flight traces extend to now.
func (fr *flightRecorder) traceSnapshot() obs.Snapshot {
	inflight, recent := fr.list()
	all := append(append([]*QueryTrace(nil), recent...), inflight...)
	snap := obs.Snapshot{Rank: serveTracePid, ProcName: "midas-serve queries"}
	if len(all) == 0 {
		return snap
	}
	var base time.Time
	for _, tr := range all {
		tr.mu.Lock()
		if at := tr.stages[0].At; base.IsZero() || at.Before(base) {
			base = at
		}
		tr.mu.Unlock()
	}
	now := time.Now()
	for _, tr := range all {
		tr.mu.Lock()
		end := now
		terminal := tr.status != ""
		if terminal {
			end = tr.stages[len(tr.stages)-1].At
		}
		tid := int(tr.seq)
		name := "req " + tr.id + " (" + tr.kind + " k=" + strconv.Itoa(tr.k) + ")"
		snap.Spans = append(snap.Spans, obs.Span{
			Name: name, Cat: "serve-query", Tid: tid, Depth: 0,
			Start: tr.stages[0].At.Sub(base).Seconds(),
			Dur:   end.Sub(tr.stages[0].At).Seconds(),
		})
		for i, ev := range tr.stages {
			stageEnd := end
			if i+1 < len(tr.stages) {
				stageEnd = tr.stages[i+1].At
			}
			snap.Spans = append(snap.Spans, obs.Span{
				Name: ev.Stage, Cat: "serve-stage", Tid: tid, Depth: 1,
				Start: ev.At.Sub(base).Seconds(),
				Dur:   stageEnd.Sub(ev.At).Seconds(),
			})
		}
		if snap.End < end.Sub(base).Seconds() {
			snap.End = end.Sub(base).Seconds()
		}
		tr.mu.Unlock()
	}
	snap.SpansRecorded = len(snap.Spans)
	return snap
}
