package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
)

// testServer returns a started server (own listener) preloaded with a
// small graph named "g", plus a cleanup.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	s.AddGraph("g", graph.RandomGNM(60, 180, 1))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeJob(t *testing.T, body []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad job JSON %s: %v", body, err)
	}
	return v
}

// metricValue sums a counter family over all samples in a /metrics
// exposition.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	var total float64
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) > 0 && rest[0] != ' ' && rest[0] != '{' {
			continue // longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		var v float64
		fmt.Sscanf(fields[len(fields)-1], "%g", &v) //nolint:errcheck
		total += v
	}
	return total
}

// TestQueryLifecycle: load a graph via the API, run a query, check the
// answer against the library, then repeat it and require a cache hit.
func TestQueryLifecycle(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	base := "http://" + s.Addr()

	resp, body := postJSON(t, base+"/v1/graphs", GraphRequest{Name: "api", Random: &RandomSpec{N: 50, Seed: 7}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add graph: %d %s", resp.StatusCode, body)
	}
	var gv GraphView
	if err := json.Unmarshal(body, &gv); err != nil || gv.Vertices != 50 {
		t.Fatalf("bad graph view %s (err %v)", body, err)
	}

	q := QueryRequest{Graph: "api", Kind: KindPath, K: 6, Seed: 3, Rounds: 1}
	resp, body = postJSON(t, base+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	first := decodeJob(t, body)
	if first.Status != StatusDone || first.Result == nil {
		t.Fatalf("first query not done: %s", body)
	}
	if first.Result.Cached {
		t.Fatal("first query claims to be cached")
	}

	resp, body = postJSON(t, base+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat query: %d %s", resp.StatusCode, body)
	}
	second := decodeJob(t, body)
	if second.Result == nil || !second.Result.Cached {
		t.Fatalf("repeat was not served from cache: %s", body)
	}
	if second.Result.Found != first.Result.Found {
		t.Fatal("cached answer differs from computed answer")
	}
}

// TestSingleflightRunsDPOnce: two identical queries fired concurrently
// must share one DP execution — after both return, exactly one cache
// miss (one execution) is recorded and at least one requester either
// joined the flight or hit the cache.
func TestSingleflightRunsDPOnce(t *testing.T) {
	s := testServer(t, Config{Workers: 4})
	base := "http://" + s.Addr()
	// k=16 with one round is slow enough (hundreds of ms) that the
	// second query reliably arrives while the first is in flight.
	s.AddGraph("big", graph.RandomGNM(150, 600, 2))
	q := QueryRequest{Graph: "big", Kind: KindPath, K: 16, Seed: 5, Rounds: 1, N2: 64}

	var wg sync.WaitGroup
	results := make([]JobView, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/query", q)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeJob(t, body)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if results[0].Result.Found != results[1].Result.Found {
		t.Fatal("shared queries disagree")
	}
	_, metrics := getBody(t, base+"/metrics")
	if misses := metricValue(t, string(metrics), "midas_serve_cache_misses_total"); misses != 1 {
		t.Fatalf("DP ran %v times for two identical concurrent queries, want exactly 1", misses)
	}
}

// TestDeadlineAbortsSweep: a k=18 query with a deadline far below its
// runtime returns 504 with a context error, and its reported phase
// counter proves the 2^k sweep did not complete.
func TestDeadlineAbortsSweep(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()
	s.AddGraph("big", graph.RandomGNM(300, 1200, 3))
	q := QueryRequest{
		Graph: "big", Kind: KindPath, K: 18, Seed: 1, Rounds: 1, N2: 32,
		TimeoutMillis: 150,
	}
	start := time.Now()
	resp, body := postJSON(t, base+"/v1/query", q)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("got %d %s, want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline query took %v; cancellation is not reaching the DP", elapsed)
	}
	v := decodeJob(t, body)
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", v.Error)
	}
	if v.Result == nil {
		t.Fatal("aborted query carries no execution counters")
	}
	if v.Result.TotalPhases == 0 || v.Result.Phases >= v.Result.TotalPhases {
		t.Fatalf("phases %d / %d: sweep appears to have completed despite the deadline",
			v.Result.Phases, v.Result.TotalPhases)
	}
	_, metrics := getBody(t, base+"/metrics")
	if c := metricValue(t, string(metrics), "midas_serve_cancelled_total"); c < 1 {
		t.Fatalf("cancelled counter %v, want >= 1", c)
	}
}

// TestCancelMidFlight: DELETE /v1/jobs/{id} on a slow async k=18 query
// cancels it mid-flight.
func TestCancelMidFlight(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()
	s.AddGraph("big", graph.RandomGNM(300, 1200, 4))
	wait := false
	q := QueryRequest{Graph: "big", Kind: KindPath, K: 18, Seed: 2, Rounds: 1, N2: 32, Wait: &wait}
	resp, body := postJSON(t, base+"/v1/query", q)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	v := decodeJob(t, body)
	// Give it a moment to actually start executing.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, jb := getBody(t, base+"/v1/jobs/"+v.ID)
		if decodeJob(t, jb).Status == StatusRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		_, jb := getBody(t, base+"/v1/jobs/"+v.ID)
		jv := decodeJob(t, jb)
		if jv.Status == StatusCancelled {
			return
		}
		if jv.Status == StatusDone || jv.Status == StatusFailed {
			t.Fatalf("job finished as %s instead of cancelled", jv.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never reached cancelled state")
}

// TestAdmissionRejects: with a tiny queue and one busy worker, excess
// queries get 429 and the reject counter moves.
func TestAdmissionRejects(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1})
	base := "http://" + s.Addr()
	s.AddGraph("big", graph.RandomGNM(300, 1200, 5))
	wait := false
	slow := QueryRequest{Graph: "big", Kind: KindPath, K: 18, Seed: 9, Rounds: 1, N2: 32, Wait: &wait}
	// Occupy the worker, fill the queue, then overflow. Seeds differ so
	// neither the cache nor singleflight absorbs the extras.
	got429 := false
	for i := 0; i < 6; i++ {
		q := slow
		q.Seed = uint64(10 + i)
		resp, _ := postJSON(t, base+"/v1/query", q)
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if ra := resp.Header.Get("Retry-After"); ra != retryAfterQueueFull {
				t.Fatalf("429 Retry-After %q, want %q", ra, retryAfterQueueFull)
			}
			break
		}
	}
	if !got429 {
		t.Fatal("no query was rejected despite queue depth 1 and 1 worker")
	}
	_, metrics := getBody(t, base+"/metrics")
	if r := metricValue(t, string(metrics), "midas_serve_rejected_total"); r < 1 {
		t.Fatalf("rejected counter %v, want >= 1", r)
	}
}

// TestMetricsSurface: the exposition carries the serve counter series
// and the state gauges the operations guide documents.
func TestMetricsSurface(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()
	postJSON(t, base+"/v1/query", QueryRequest{Graph: "g", Kind: KindPath, K: 5, Seed: 1, Rounds: 1})
	_, metrics := getBody(t, base+"/metrics")
	for _, name := range []string{
		"midas_serve_admitted_total",
		"midas_serve_rejected_total",
		"midas_serve_cache_hits_total",
		"midas_serve_cache_misses_total",
		"midas_serve_singleflight_shared_total",
		"midas_serve_cancelled_total",
		"midas_serve_completed_total",
		"midas_serve_queue_depth",
		"midas_serve_queue_capacity",
		"midas_serve_inflight",
		"midas_serve_cache_entries",
		"midas_serve_cache_bytes",
		"midas_serve_graphs",
		"midas_serve_draining",
		"midas_serve_queue_wait_seconds",
		"midas_serve_query_latency_seconds",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
}

// TestQueryKindsMatchLibrary: tree and scanstat queries (sequential
// and distributed) agree with direct library calls.
func TestQueryKindsMatchLibrary(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	base := "http://" + s.Addr()
	g := graph.RandomGNM(40, 120, 11)
	w := make([]int64, g.NumVertices())
	for i := range w {
		w[i] = int64(i % 3)
	}
	g.SetWeights(w)
	s.AddGraph("wg", g)

	tpl := [][2]int32{{0, 1}, {1, 2}, {1, 3}}
	resp, body := postJSON(t, base+"/v1/query", QueryRequest{Graph: "wg", Kind: KindTree, Template: tpl, Seed: 2, Rounds: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tree query: %d %s", resp.StatusCode, body)
	}
	treeSeq := decodeJob(t, body)

	resp, body = postJSON(t, base+"/v1/query", QueryRequest{Graph: "wg", Kind: KindScanStat, K: 3, ZMax: 4, Seed: 2, Rounds: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan query: %d %s", resp.StatusCode, body)
	}
	scan := decodeJob(t, body)
	if scan.Result == nil || len(scan.Result.Table) != 4 {
		t.Fatalf("scan table has %d rows, want k+1=4", len(scan.Result.Table))
	}

	// Distributed execution of the same queries must agree.
	resp, body = postJSON(t, base+"/v1/query", QueryRequest{Graph: "wg", Kind: KindTree, Template: tpl, Seed: 2, Rounds: 1, Ranks: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed tree query: %d %s", resp.StatusCode, body)
	}
	if dv := decodeJob(t, body); dv.Result.Found != treeSeq.Result.Found {
		t.Fatal("distributed tree answer differs from sequential")
	}
	resp, body = postJSON(t, base+"/v1/query", QueryRequest{Graph: "wg", Kind: KindScanStat, K: 3, ZMax: 4, Seed: 2, Rounds: 1, Ranks: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed scan query: %d %s", resp.StatusCode, body)
	}
	if dv := decodeJob(t, body); fmt.Sprint(dv.Result.Table) != fmt.Sprint(scan.Result.Table) {
		t.Fatal("distributed scan table differs from sequential")
	}
}

// TestBadRequests: malformed queries are rejected before admission.
func TestBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	base := "http://" + s.Addr()
	cases := []QueryRequest{
		{Kind: KindPath, K: 5},                   // no graph
		{Graph: "g", Kind: "nope", K: 5},         // bad kind
		{Graph: "g", Kind: KindPath, K: 0},       // bad k
		{Graph: "g", Kind: KindPath, K: 99},      // k over MaxK
		{Graph: "g", Kind: KindTree},             // tree without template
		{Graph: "missing", Kind: KindPath, K: 5}, // unknown graph (404)
		{Graph: "g", Kind: KindScanStat, K: 3, ZMax: -1},
		{Graph: "g", Kind: KindPath, K: 5, Ranks: 4, N1: 3}, // n1 ∤ ranks
	}
	for i, q := range cases {
		resp, body := postJSON(t, base+"/v1/query", q)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("case %d: got %d %s, want 400/404", i, resp.StatusCode, body)
		}
	}
}

// TestGracefulDrain: during Shutdown, in-flight work finishes, new
// admissions get 503, and Shutdown returns cleanly within the window.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2})
	s.AddGraph("g", graph.RandomGNM(100, 400, 6))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	// A moderately slow query in flight while we drain.
	type outcome struct {
		code int
		view JobView
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, body := postJSON(t, base+"/v1/query",
			QueryRequest{Graph: "g", Kind: KindPath, K: 14, Seed: 8, Rounds: 1, N2: 64})
		ch <- outcome{resp.StatusCode, decodeJob(t, body)}
	}()
	// Wait until it is actually executing.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// New admissions during the drain are refused.
	drainDeadline := time.Now().Add(5 * time.Second)
	refused := false
	for time.Now().Before(drainDeadline) {
		resp, err := http.Post(base+"/v1/query", "application/json",
			strings.NewReader(`{"graph":"g","kind":"path","k":5}`))
		if err != nil {
			break // listener already down: drain finished
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			refused = true
			if ra := resp.Header.Get("Retry-After"); ra != retryAfterDraining {
				t.Errorf("draining 503 Retry-After %q, want %q", ra, retryAfterDraining)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !refused {
		t.Error("no admission was refused with 503 during the drain")
	}
	o := <-ch
	if o.code != http.StatusOK || o.view.Status != StatusDone {
		t.Fatalf("in-flight query did not finish during drain: %d %+v", o.code, o.view)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestForcedDrainCancelsWork: a drain window far shorter than the
// running query cancels it rather than waiting.
func TestForcedDrainCancelsWork(t *testing.T) {
	s := New(Config{Workers: 1})
	s.AddGraph("g", graph.RandomGNM(300, 1200, 6))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	wait := false
	resp, body := postJSON(t, base+"/v1/query",
		QueryRequest{Graph: "g", Kind: KindPath, K: 18, Seed: 8, Rounds: 1, N2: 32, Wait: &wait})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("forced drain reported a clean shutdown")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("forced shutdown took %v", elapsed)
	}
}

// TestHTTPTestHandlerMount: the Handler mounts cleanly on an external
// mux/server (embedding use-case).
func TestHTTPTestHandlerMount(t *testing.T) {
	s := New(Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	s.AddGraph("g", graph.RandomGNM(30, 60, 1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Graph: "g", Kind: KindPath, K: 4, Seed: 1, Rounds: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query via mounted handler: %d %s", resp.StatusCode, body)
	}
}
