package serve

// The flight-recorder debug API:
//
//	GET /v1/debug/requests       live service snapshot + every in-flight
//	                             trace + the ring of recent completions
//	GET /v1/debug/requests/{id}  one request's full stage timeline
//	GET /v1/debug/trace          the recorder as Chrome trace_event JSON
//	                             (a "midas-serve queries" process lane;
//	                             load at chrome://tracing or Perfetto)
//
// Always on: the recorder costs a bounded ring of completed traces, so
// there is no sampling flag to forget before an incident.

import (
	"net/http"
	"time"

	"github.com/midas-hpc/midas/internal/obs"
)

// RecorderStats describes the flight recorder's occupancy.
type RecorderStats struct {
	Inflight int   `json:"inflight"`
	Recent   int   `json:"recent"`
	Capacity int   `json:"capacity"`
	Evicted  int64 `json:"evicted"`
}

// DebugSnapshot is the live service introspection block of
// GET /v1/debug/requests: the state gauges of /metrics plus the bits
// Prometheus text format cannot carry (per-worker states, build info).
type DebugSnapshot struct {
	Now           time.Time     `json:"now"`
	UptimeSeconds float64       `json:"uptimeSeconds"`
	Build         obs.BuildInfo `json:"build"`
	Draining      bool          `json:"draining"`

	QueueDepth    int      `json:"queueDepth"`
	QueueCapacity int      `json:"queueCapacity"`
	Inflight      int64    `json:"inflight"`
	Workers       []string `json:"workers"` // per-worker state: idle | running | batching

	CacheEntries       int   `json:"cacheEntries"`
	CacheBytes         int64 `json:"cacheBytes"`
	ArenaRetainedBytes int64 `json:"arenaRetainedBytes"`
	Graphs             int   `json:"graphs"`
	Jobs               int   `json:"jobs"`

	BatchWindowMillis float64 `json:"batchWindowMillis"`
	BatchMaxLanes     int     `json:"batchMaxLanes"`

	FlightRecorder RecorderStats `json:"flightRecorder"`

	// Cluster is the fleet view (membership, placement, advertise/peer
	// configuration) when this server runs as a cluster node; absent on
	// a standalone server. Shape: cluster.StatusView.
	Cluster any `json:"cluster,omitempty"`
}

// DebugRequests is the GET /v1/debug/requests response body.
type DebugRequests struct {
	Snapshot DebugSnapshot `json:"snapshot"`
	Inflight []TraceView   `json:"inflight"` // newest first
	Recent   []TraceView   `json:"recent"`   // newest first
}

// debugSnapshot assembles the live introspection block.
func (s *Server) debugSnapshot() DebugSnapshot {
	entries, bytes := s.cache.stats()
	fin, frec, fcap, fev := s.flightRec.stats()
	workers := make([]string, len(s.workerState))
	for i := range s.workerState {
		st, _ := s.workerState[i].Load().(string)
		if st == "" {
			st = "idle"
		}
		workers[i] = st
	}
	return DebugSnapshot{
		Now:           time.Now(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         obs.GetBuildInfo(),
		Draining:      s.draining.Load(),

		QueueDepth:    s.queue.len(),
		QueueCapacity: s.cfg.QueueDepth,
		Inflight:      s.inflight.Load(),
		Workers:       workers,

		CacheEntries:       entries,
		CacheBytes:         bytes,
		ArenaRetainedBytes: s.arena.RetainedBytes(),
		Graphs:             s.registry.size(),
		Jobs:               s.jobs.size(),

		BatchWindowMillis: float64(s.cfg.BatchWindow) / float64(time.Millisecond),
		BatchMaxLanes:     s.cfg.BatchMaxLanes,

		FlightRecorder: RecorderStats{Inflight: fin, Recent: frec, Capacity: fcap, Evicted: fev},
	}
}

func (s *Server) debugSnapshotWithCluster() DebugSnapshot {
	snap := s.debugSnapshot()
	if s.clusterInfo != nil {
		snap.Cluster = s.clusterInfo()
	}
	return snap
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	inflight, recent := s.flightRec.list()
	out := DebugRequests{
		Snapshot: s.debugSnapshotWithCluster(),
		Inflight: make([]TraceView, 0, len(inflight)),
		Recent:   make([]TraceView, 0, len(recent)),
	}
	for _, tr := range inflight {
		out.Inflight = append(out.Inflight, tr.view())
	}
	for _, tr := range recent {
		out.Recent = append(out.Recent, tr.view())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.flightRec.get(id)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "no trace for request %q (evicted, or never seen)", id)
		return
	}
	writeJSON(w, http.StatusOK, tr.view())
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.WriteTrace(w, s.flightRec.traceSnapshot()) //nolint:errcheck
}
