package serve

import (
	"container/list"
	"sync"
)

// resultCache is the LRU result cache: completed query results keyed by
// the full query identity (graph digest, kind, k/template, seeding —
// see queryKey), bounded by entries and approximate bytes. A repeat of
// any finished query is answered from here without touching the DP.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	order      *list.List               // *cacheEntry; front = most recent
	m          map[string]*list.Element // key → element
}

type cacheEntry struct {
	key   string
	res   *Result
	bytes int64
}

func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		m:          make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e)
	return e.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting least-recently-used entries while
// over either bound. A result alone larger than the byte budget is not
// cached.
func (c *resultCache) put(key string, res *Result, size int64) {
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		ce := e.Value.(*cacheEntry)
		c.bytes += size - ce.bytes
		ce.res, ce.bytes = res, size
		c.order.MoveToFront(e)
	} else {
		c.m[key] = c.order.PushFront(&cacheEntry{key: key, res: res, bytes: size})
		c.bytes += size
	}
	for (c.maxEntries > 0 && c.order.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes && c.order.Len() > 1) {
		oldest := c.order.Back()
		ce := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.m, ce.key)
		c.bytes -= ce.bytes
	}
}

func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes
}
