package serve

import "sync"

// admitQueue is the admission queue. It behaves like the bounded
// channel it replaces — push rejects when full, popWait blocks until
// work arrives — but additionally supports take: a batch leader
// removing the queued jobs compatible with its own, in admission
// order, without disturbing the rest. A channel can't express that
// (anything popped and found incompatible would have to be re-queued
// behind newer arrivals, and could be re-popped by the same leader in
// a spin); a condition variable over a slice can.
type admitQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	depth  int
	closed bool
}

func newAdmitQueue(depth int) *admitQueue {
	q := &admitQueue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends j; false when the queue is full or closed.
func (q *admitQueue) push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.depth {
		return false
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return true
}

// popWait blocks until a job is available (ok=true) or the queue is
// closed (ok=false). Close wins immediately even with items queued —
// shutdown fails leftovers out via drain, exactly like the channel
// version did.
func (q *admitQueue) popWait() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.items) == 0 {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

// take removes and returns up to max queued jobs satisfying pred, in
// admission order, without blocking. Non-matching jobs keep their
// positions.
func (q *admitQueue) take(pred func(*job) bool, max int) []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || max <= 0 {
		return nil
	}
	var out []*job
	kept := q.items[:0]
	for _, j := range q.items {
		if len(out) < max && pred(j) {
			out = append(out, j)
		} else {
			kept = append(kept, j)
		}
	}
	// Zero the tail so dropped jobs don't pin memory via the backing array.
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = kept
	return out
}

func (q *admitQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close wakes every waiter with ok=false and rejects further pushes.
func (q *admitQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drain empties the queue (post-close leftover collection at shutdown).
func (q *admitQueue) drain() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}
