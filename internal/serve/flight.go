package serve

import (
	"context"
	"sync"
)

// flight is one in-flight execution of a query identity that any
// number of identical concurrent queries share. The DP runs under the
// flight's context, which is detached from any single requester's
// deadline: it is cancelled only when *every* participant has left
// (each leaving because its own context expired or the client went
// away), so one impatient client cannot kill a result others are
// still waiting for — and a sole impatient client does stop the DP.
type flight struct {
	key    string
	ctx    context.Context
	cancel context.CancelFunc

	done chan struct{} // closed when res/err are set
	res  *Result
	err  error

	mu   sync.Mutex
	refs int
}

// flightGroup deduplicates identical in-flight queries.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flight)} }

// join returns the flight for key, creating it (leader=true) when no
// identical query is in flight. The caller holds one reference either
// way; pair with leave.
func (g *flightGroup) join(base context.Context, key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.mu.Lock()
		f.refs++
		f.mu.Unlock()
		return f, false
	}
	ctx, cancel := context.WithCancel(base)
	f = &flight{key: key, ctx: ctx, cancel: cancel, done: make(chan struct{}), refs: 1}
	g.m[key] = f
	return f, true
}

// leave drops one participant. When the last one leaves before the
// flight finished, the flight context is cancelled so the DP stops
// burning iterations for a result nobody wants; the return value
// reports whether this leave triggered that cancellation.
func (g *flightGroup) leave(f *flight) bool {
	f.mu.Lock()
	f.refs--
	last := f.refs == 0
	f.mu.Unlock()
	if !last {
		return false
	}
	select {
	case <-f.done:
		return false // finished normally; nothing to stop
	default:
		f.cancel()
		return true
	}
}

// finish publishes the result and removes the flight from the group
// (later identical queries start fresh or hit the result cache).
func (g *flightGroup) finish(f *flight, res *Result, err error) {
	g.mu.Lock()
	delete(g.m, f.key)
	g.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
	f.cancel()
}
