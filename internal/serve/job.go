package serve

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Job states.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// job is one admitted query: its identity key, deadline context, and
// terminal result. Jobs survive in the table after finishing so
// GET /v1/jobs/{id} can report the outcome of async queries.
type job struct {
	ID     string
	Key    string
	Req    *QueryRequest
	digest uint64 // content digest of the named graph (batch compatibility)

	// trace is the job's query trace; finishHook (the server's
	// completeTrace) runs exactly once when the job reaches a terminal
	// state, on whichever goroutine finished it. Both are set before
	// the job enters the queue and never mutated after, so workers read
	// them without the job lock.
	trace      *QueryTrace
	finishHook func(*job)

	ctx    context.Context
	cancel context.CancelFunc

	enqueued time.Time
	done     chan struct{} // closed at terminal state

	mu       sync.Mutex
	status   string
	res      *Result
	err      error
	started  time.Time
	finished time.Time
}

// setStatus moves the job to a non-terminal state.
func (j *job) setStatus(s string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		return
	}
	j.status = s
	if s == StatusRunning && j.started.IsZero() {
		j.started = time.Now()
	}
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(status string, res *Result, err error) {
	j.mu.Lock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled {
		j.mu.Unlock()
		return
	}
	j.status, j.res, j.err = status, res, err
	j.finished = time.Now()
	j.mu.Unlock()
	if j.finishHook != nil {
		j.finishHook(j)
	}
	close(j.done)
	j.cancel()
}

// traceStage appends a stage to the job's trace (no-op untraced).
func (j *job) traceStage(name string) {
	if j.trace != nil {
		j.trace.stage(name)
	}
}

// traceDisposition records how the job's query is being answered.
func (j *job) traceDisposition(d string, lanes int) {
	if j.trace != nil {
		j.trace.setDisposition(d, lanes)
	}
}

// view snapshots the job for the API.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.ID, Status: j.status, Result: j.res}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		v.RunMillis = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return v
}

// jobTable issues ids and retains finished jobs up to a bound (oldest
// finished jobs are dropped first; running jobs are never dropped).
type jobTable struct {
	mu     sync.Mutex
	next   int64
	m      map[string]*job
	maxLen int
}

func newJobTable(maxLen int) *jobTable {
	return &jobTable{m: make(map[string]*job), maxLen: maxLen}
}

func (t *jobTable) newJob(base context.Context, key string, req *QueryRequest, timeout time.Duration) *job {
	ctx, cancel := context.WithCancel(base)
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(base, timeout)
	}
	t.mu.Lock()
	t.next++
	j := &job{
		ID: "j" + strconv.FormatInt(t.next, 10), Key: key, Req: req,
		ctx: ctx, cancel: cancel,
		enqueued: time.Now(), done: make(chan struct{}), status: StatusQueued,
	}
	t.m[j.ID] = j
	t.trimLocked()
	t.mu.Unlock()
	return j
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.m[id]
	return j, ok
}

func (t *jobTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// trimLocked evicts the oldest terminal jobs while over the bound.
func (t *jobTable) trimLocked() {
	if t.maxLen <= 0 || len(t.m) <= t.maxLen {
		return
	}
	type fin struct {
		id string
		at time.Time
	}
	var finished []fin
	for id, j := range t.m {
		j.mu.Lock()
		term := j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled
		at := j.finished
		j.mu.Unlock()
		if term {
			finished = append(finished, fin{id, at})
		}
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].at.Before(finished[k].at) })
	for _, f := range finished {
		if len(t.m) <= t.maxLen {
			break
		}
		delete(t.m, f.id)
	}
}
