package serve

// HTTP middleware: request-ID assignment, panic recovery, and the
// structured access log. Every response — success or error, any route —
// carries an X-Midas-Request-Id header: the caller's own value when the
// request supplied one, a generated ID otherwise. The ID is the join
// key across the access log, the flight recorder's debug endpoints, and
// the exported serve trace lane.

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// RequestIDHeader is the request/response header carrying the query's
// request ID.
const RequestIDHeader = "X-Midas-Request-Id"

// reqInfo travels the request context from the middleware to handlers:
// the request ID and the HTTP-boundary arrival time (so traces include
// decode/validate latency).
type reqInfo struct {
	id       string
	received time.Time
}

type reqInfoKey struct{}

// requestInfo extracts the middleware's request info; the zero info
// (generated on the spot) covers handlers invoked without it (tests
// hitting handlers directly).
func (s *Server) requestInfo(r *http.Request) reqInfo {
	if ri, ok := r.Context().Value(reqInfoKey{}).(reqInfo); ok {
		return ri
	}
	return reqInfo{id: s.nextRequestID(), received: time.Now()}
}

// requestIDOf returns the request's ID for error envelopes ("" when the
// middleware did not run).
func requestIDOf(r *http.Request) string {
	if r == nil {
		return ""
	}
	if ri, ok := r.Context().Value(reqInfoKey{}).(reqInfo); ok {
		return ri.id
	}
	return ""
}

// nextRequestID generates a process-unique request ID. The prefix is
// derived from the server's start instant, so IDs from successive
// process generations do not collide in downstream log stores.
func (s *Server) nextRequestID() string {
	return s.idPrefix + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// statusWriter captures the response status and size for the access
// log, and whether a handler already wrote headers (so the recovery
// path knows if an error envelope can still be sent).
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.code = http.StatusOK
		sw.wrote = true
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// middleware wraps the API mux: assigns/propagates the request ID,
// stamps it on the response, recovers panics into a JSON 500 envelope,
// and emits one structured access-log line per request.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = s.nextRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, reqInfo{id: id, received: start}))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.logger.Error("panic serving request",
					"requestId", id, "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if !sw.wrote {
					writeErr(sw, r, http.StatusInternalServerError, "internal server error")
				}
			}
			s.logger.Info("http request",
				"requestId", id, "method", r.Method, "path", r.URL.Path,
				"status", sw.code, "bytes", sw.bytes,
				"millis", millis(start, time.Now()))
		}()
		next.ServeHTTP(sw, r)
	})
}

// noopHandler is the logger backing Config.Logger == nil: disabled at
// every level, so log call sites cost one Enabled test and no
// formatting. (slog.DiscardHandler postdates this module's Go version.)
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }
