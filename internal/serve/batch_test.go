package serve

import (
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

func TestAdmitQueueTakePreservesOrder(t *testing.T) {
	q := newAdmitQueue(8)
	mk := func(kind string) *job {
		return &job{Req: &QueryRequest{Kind: kind}}
	}
	jobs := []*job{mk(KindPath), mk(KindTree), mk(KindPath), mk(KindScanStat), mk(KindPath)}
	for _, j := range jobs {
		if !q.push(j) {
			t.Fatal("push rejected below capacity")
		}
	}
	got := q.take(func(j *job) bool { return j.Req.Kind == KindPath }, 2)
	if len(got) != 2 || got[0] != jobs[0] || got[1] != jobs[2] {
		t.Fatalf("take returned wrong jobs: %v", got)
	}
	if q.len() != 3 {
		t.Fatalf("queue length %d after take, want 3", q.len())
	}
	// Remaining admission order: tree, scanstat, path.
	for _, want := range []*job{jobs[1], jobs[3], jobs[4]} {
		j, ok := q.popWait()
		if !ok || j != want {
			t.Fatalf("popWait out of order: got %v want %v", j, want)
		}
	}
}

func TestAdmitQueueCloseWakesWaiters(t *testing.T) {
	q := newAdmitQueue(2)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.popWait()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("popWait returned ok after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("popWait did not wake on close")
	}
	if q.push(&job{}) {
		t.Fatal("push accepted after close")
	}
}

// TestBatchAssemblyMatchesSolo: with one worker and a batch window,
// concurrent compatible queries are answered by one batched execution
// — and every answer still matches the library exactly.
func TestBatchAssemblyMatchesSolo(t *testing.T) {
	s := testServer(t, Config{Workers: 1, BatchWindow: 250 * time.Millisecond, BatchMaxLanes: 8})
	base := "http://" + s.Addr()
	g := graph.RandomGNM(60, 180, 1) // testServer's graph "g", regenerated for the oracle

	type q struct {
		k    int
		seed uint64
	}
	qs := []q{{4, 10}, {6, 11}, {5, 12}, {7, 13}, {6, 14}}
	var wg sync.WaitGroup
	results := make([]JobView, len(qs))
	for i, qq := range qs {
		wg.Add(1)
		go func(i int, qq q) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/query", QueryRequest{
				Graph: "g", Kind: KindPath, K: qq.k, Seed: qq.seed, Rounds: 1,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeJob(t, body)
		}(i, qq)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, qq := range qs {
		want, err := mld.DetectPath(g, qq.k, mld.Options{Seed: qq.seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Status != StatusDone || results[i].Result == nil {
			t.Fatalf("query %d not done: %+v", i, results[i])
		}
		if results[i].Result.Found != want {
			t.Fatalf("query %d (k=%d seed=%d): served %v, library %v",
				i, qq.k, qq.seed, results[i].Result.Found, want)
		}
	}
	_, metrics := getBody(t, base+"/metrics")
	batches := metricValue(t, string(metrics), "midas_serve_batches_total")
	lanes := metricValue(t, string(metrics), "midas_serve_batch_lanes_total")
	if batches < 1 {
		t.Fatalf("no batched execution recorded (batches=%v)", batches)
	}
	if lanes < 2 {
		t.Fatalf("batch lanes %v, want >= 2 (occupancy never exceeded 1)", lanes)
	}
	if occ := metricValue(t, string(metrics), "midas_serve_batch_occupancy_seconds_count"); occ != batches {
		t.Fatalf("occupancy histogram count %v != batches %v", occ, batches)
	}
}

// TestBatchDistributedMatchesSolo: distributed path queries (ranks=2)
// batch through core.RunPathBatch and still match the library.
func TestBatchDistributedMatchesSolo(t *testing.T) {
	s := testServer(t, Config{Workers: 1, BatchWindow: 250 * time.Millisecond, BatchMaxLanes: 8})
	base := "http://" + s.Addr()
	g := graph.RandomGNM(60, 180, 1)

	seeds := []uint64{20, 21, 22}
	var wg sync.WaitGroup
	results := make([]JobView, len(seeds))
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/query", QueryRequest{
				Graph: "g", Kind: KindPath, K: 5 + i, Seed: seed, Rounds: 1, Ranks: 2,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeJob(t, body)
		}(i, seed)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, seed := range seeds {
		want, err := mld.DetectPath(g, 5+i, mld.Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Result == nil || results[i].Result.Found != want {
			t.Fatalf("distributed query %d (k=%d): got %+v, library %v", i, 5+i, results[i].Result, want)
		}
	}
}

// TestBatchLaneCancelMasksLane: DELETE on one lane of an in-flight
// batch cancels only that lane; the other lane finishes with the
// correct answer.
func TestBatchLaneCancelMasksLane(t *testing.T) {
	s := testServer(t, Config{Workers: 1, BatchWindow: 300 * time.Millisecond, BatchMaxLanes: 4})
	base := "http://" + s.Addr()
	s.AddGraph("big", graph.RandomGNM(200, 800, 6))
	gBig := graph.RandomGNM(200, 800, 6)

	wait := false
	submit := func(k int, seed uint64) JobView {
		resp, body := postJSON(t, base+"/v1/query", QueryRequest{
			Graph: "big", Kind: KindPath, K: k, Seed: seed, Rounds: 1, N2: 32, Wait: &wait,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async submit: %d %s", resp.StatusCode, body)
		}
		return decodeJob(t, body)
	}
	// Both queries land in the same window (one worker, 300 ms window):
	// k=16 is the slow victim lane, k=14 the survivor.
	victim := submit(16, 30)
	survivor := submit(14, 31)

	jobStatus := func(id string) JobView {
		_, jb := getBody(t, base+"/v1/jobs/"+id)
		return decodeJob(t, jb)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if jobStatus(victim.ID).Status == StatusRunning && jobStatus(survivor.ID).Status == StatusRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+victim.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	// The statuses fan out only when the whole batch finishes — the
	// survivor sweeps its full 2^14 prefix after the victim is masked
	// — so give the post-cancel poll its own generous (race-detector
	// friendly) deadline.
	deadline = time.Now().Add(90 * time.Second)
	var vv, sv JobView
	for time.Now().Before(deadline) {
		vv, sv = jobStatus(victim.ID), jobStatus(survivor.ID)
		if vv.Status == StatusCancelled && sv.Status == StatusDone {
			break
		}
		if vv.Status == StatusDone {
			t.Fatalf("victim finished as done despite cancellation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if vv.Status != StatusCancelled {
		t.Fatalf("victim status %q, want cancelled", vv.Status)
	}
	if sv.Status != StatusDone || sv.Result == nil {
		t.Fatalf("survivor status %q (result %v), want done", sv.Status, sv.Result)
	}
	want, err := mld.DetectPath(gBig, 14, mld.Options{Seed: 31, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sv.Result.Found != want {
		t.Fatalf("survivor answer %v, library %v", sv.Result.Found, want)
	}
	_, metrics := getBody(t, base+"/metrics")
	if c := metricValue(t, string(metrics), "midas_serve_cancelled_total"); c < 1 {
		t.Fatalf("cancelled counter %v, want >= 1", c)
	}
}

// TestBatchMixedKindsDoNotShare: queries of different kinds admitted
// together must not land in one batch — each kind gets its own
// execution, and all answers stay correct.
func TestBatchMixedKindsDoNotShare(t *testing.T) {
	s := testServer(t, Config{Workers: 1, BatchWindow: 150 * time.Millisecond, BatchMaxLanes: 8})
	base := "http://" + s.Addr()
	g := graph.RandomGNM(60, 180, 1)

	reqs := []QueryRequest{
		{Graph: "g", Kind: KindPath, K: 5, Seed: 40, Rounds: 1},
		{Graph: "g", Kind: KindTree, Template: [][2]int32{{0, 1}, {1, 2}, {1, 3}}, Seed: 41, Rounds: 1},
		{Graph: "g", Kind: KindPath, K: 6, Seed: 42, Rounds: 1},
	}
	var wg sync.WaitGroup
	results := make([]JobView, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/query", reqs[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeJob(t, body)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, r := range reqs {
		var want bool
		var err error
		if r.Kind == KindPath {
			want, err = mld.DetectPath(g, r.K, mld.Options{Seed: r.Seed, Rounds: 1})
		} else {
			tpl, terr := graph.NewTemplate(4, r.Template)
			if terr != nil {
				t.Fatal(terr)
			}
			want, err = mld.DetectTree(g, tpl, mld.Options{Seed: r.Seed, Rounds: 1})
		}
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Result == nil || results[i].Result.Found != want {
			t.Fatalf("query %d (%s): got %+v, library %v", i, r.Kind, results[i].Result, want)
		}
	}
}

// TestBatchWindowOffIsSolo: BatchWindow zero means no batch counters
// ever move, even under concurrent compatible load.
func TestBatchWindowOffIsSolo(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	base := "http://" + s.Addr()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, base+"/v1/query", QueryRequest{
				Graph: "g", Kind: KindPath, K: 5, Seed: uint64(50 + i), Rounds: 1,
			})
		}(i)
	}
	wg.Wait()
	_, metrics := getBody(t, base+"/metrics")
	if b := metricValue(t, string(metrics), "midas_serve_batches_total"); b != 0 {
		t.Fatalf("batches counter %v with batching off, want 0", b)
	}
}

// TestBatchScanStat: scanstat lanes batch too, and tables match the
// library entry for entry.
func TestBatchScanStat(t *testing.T) {
	s := testServer(t, Config{Workers: 1, BatchWindow: 200 * time.Millisecond, BatchMaxLanes: 4})
	base := "http://" + s.Addr()
	n := 30
	g := graph.RandomGNM(n, 80, 9)
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(i % 3)
	}
	g.SetWeights(w)
	s.AddGraph("wg", g)

	type q struct {
		k    int
		zmax int64
		seed uint64
	}
	qs := []q{{3, 2, 60}, {4, 3, 61}, {3, 4, 62}}
	var wg sync.WaitGroup
	results := make([]JobView, len(qs))
	for i, qq := range qs {
		wg.Add(1)
		go func(i int, qq q) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/query", QueryRequest{
				Graph: "wg", Kind: KindScanStat, K: qq.k, ZMax: qq.zmax, Seed: qq.seed, Rounds: 1,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeJob(t, body)
		}(i, qq)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, qq := range qs {
		want, err := mld.ScanTable(g, qq.k, qq.zmax, mld.Options{Seed: qq.seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Result == nil {
			t.Fatalf("query %d has no result", i)
		}
		got := results[i].Result.Table
		if len(got) != len(want) {
			t.Fatalf("query %d: table size %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			for z := range want[j] {
				if got[j][z] != want[j][z] {
					t.Fatalf("query %d: table[%d][%d] = %v, want %v (k=%s)",
						i, j, z, got[j][z], want[j][z], strconv.Itoa(qq.k))
				}
			}
		}
	}
}
