package serve

import (
	"context"
	"errors"
	"strconv"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/partition"
)

// Admission batching: when Config.BatchWindow > 0, a worker that picks
// up a query does not execute it immediately. It becomes the batch
// leader: for up to one window it keeps harvesting compatible queued
// queries (same graph, same kind, same world shape — see compatible),
// assembles every singleflight *leader* among them into a lane, and
// runs the whole set through the mld/core batched evaluators in one DP
// sweep. Results fan back out through each lane's flight, so cache
// fills, singleflight followers, and per-query cancellation behave
// exactly as in the single-query path; a lane whose last requester
// leaves mid-flight is masked out of the batch while the other lanes
// run on. docs/BATCHING.md is the full story.

// laneJob is one batch lane: the job that leads its flight plus the
// flight the result fans back through.
type laneJob struct {
	j *job
	f *flight
}

// compatible reports whether cand can share a batched DP execution
// with lead: same graph content, same kind, and — for distributed
// queries — the same world shape, since the batch runs on one
// in-process world with one partition. Seeds, k, rounds, epsilon,
// zmax, templates, N2 and Workers may all differ: each lane keeps its
// own assignment, and the batch adopts the leader's sweep geometry
// (answers are geometry-independent). Distributed batching covers
// paths only; other kinds and shapes fall back to solo runs.
func compatible(lead, cand *job) bool {
	a, b := lead.Req, cand.Req
	if lead.digest != cand.digest || a.Graph != b.Graph || a.Kind != b.Kind {
		return false
	}
	if a.Ranks != b.Ranks {
		return false
	}
	if a.Ranks > 1 {
		if a.Kind != KindPath {
			return false
		}
		if a.N1 != b.N1 || a.Scheme != b.Scheme {
			return false
		}
	}
	return true
}

// batchable reports whether a query may lead or join a batch at all.
func batchable(j *job) bool {
	r := j.Req
	if r.Ranks > 1 {
		return r.Kind == KindPath // core batches paths only
	}
	return true
}

// runBatched is the worker's entry point when admission batching is
// on: prep the first job, harvest compatible peers for one window,
// then execute. Occupancy 1 falls through to the ordinary solo path,
// so an idle service behaves exactly as with batching off (modulo the
// window of added latency).
func (s *Server) runBatched(first *job) {
	lead, ok := s.prepLane(first)
	if !ok {
		return // served from cache, joined a flight, or already expired
	}
	// Count the assembly window as in-flight work so drain waits for it.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	hold := time.Now()
	lanes := []*laneJob{lead}
	if !s.draining.Load() {
		lanes = s.collectLanes(lanes)
	}
	s.rec.Observe(obs.HistServeBatchAssembly, time.Since(hold).Seconds())
	if len(lanes) == 1 {
		s.executeLane(lead)
		return
	}
	s.logger.Debug("batch assembled",
		"lanes", len(lanes), "kind", lead.j.Req.Kind, "graph", lead.j.Req.Graph,
		"holdMillis", millis(hold, time.Now()))
	s.executeBatch(lanes)
}

// collectLanes harvests compatible queued jobs until the batch window
// closes or the batch is full. The queue is polled rather than
// subscribed: a few sweeps per window keep the leader responsive to
// late arrivals without a wakeup protocol.
func (s *Server) collectLanes(lanes []*laneJob) []*laneJob {
	lead := lanes[0].j
	deadline := time.NewTimer(s.cfg.BatchWindow)
	defer deadline.Stop()
	poll := s.cfg.BatchWindow / 8
	if poll <= 0 {
		poll = time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for len(lanes) < s.cfg.BatchMaxLanes {
		for _, cj := range s.queue.take(func(c *job) bool { return compatible(lead, c) },
			s.cfg.BatchMaxLanes-len(lanes)) {
			if lj, ok := s.prepLane(cj); ok {
				lanes = append(lanes, lj)
			}
		}
		if len(lanes) >= s.cfg.BatchMaxLanes {
			break
		}
		select {
		case <-deadline.C:
			return lanes
		case <-tick.C:
		}
	}
	return lanes
}

// prepLane takes an admitted job through the same cache/singleflight
// gauntlet as the solo path. ok=false means the job was fully handled
// here (cache hit, flight follower, expired); ok=true means the job
// leads a fresh flight and must be executed — as a batch lane or solo.
func (s *Server) prepLane(j *job) (*laneJob, bool) {
	j.traceStage(StageAdmitted)
	if err := j.ctx.Err(); err != nil {
		s.finishErr(j, nil, err) // expired while queued
		return nil, false
	}
	s.rec.Observe(obs.HistServeQueueWait, time.Since(j.enqueued).Seconds())
	if res, ok := s.cache.get(j.Key); ok {
		s.rec.Add(obs.ServeCacheHits, 1)
		s.rec.Add(obs.ServeCompleted, 1)
		j.traceDisposition(DispCacheHit, 0)
		j.traceStage(StageCacheHit)
		j.finish(StatusDone, res.cachedCopy(), nil)
		return nil, false
	}
	f, leader := s.flights.join(s.baseCtx, j.Key)
	s.followers.Add(1)
	go s.resolve(j, f)
	if !leader {
		s.rec.Add(obs.ServeSingleflightShared, 1)
		j.traceDisposition(DispSingleflight, 0)
		j.traceStage(StageSingleflightJoined)
		j.setStatus(StatusRunning)
		return nil, false
	}
	s.rec.Add(obs.ServeCacheMisses, 1)
	j.traceDisposition(DispSolo, 0)
	j.setStatus(StatusRunning)
	return &laneJob{j: j, f: f}, true
}

// executeLane runs a solo flight-leader job to completion (the
// occupancy-1 tail of runBatched; the no-batching worker path builds
// the same laneJob in runJob).
func (s *Server) executeLane(lj *laneJob) {
	start := time.Now()
	if tr := lj.j.trace; tr != nil {
		tr.beginDP(lj.j.Req.plannedPhases())
	}
	res, err := s.execute(lj.f.ctx, lj.j.Req, lj.j.trace)
	s.rec.Observe(obs.HistServeQueryLatency, time.Since(start).Seconds())
	if res != nil && lj.j.trace != nil {
		lj.j.trace.setDPResult(res.Phases, res.TotalPhases)
	}
	if err == nil {
		s.cache.put(lj.j.Key, res, res.size())
	}
	s.flights.finish(lj.f, res, err)
}

// executeBatch runs ≥2 lanes through one batched DP execution and fans
// the per-lane results back through their flights. Each lane's context
// is its flight's context, so a lane all of whose requesters left is
// masked out of the sweep (LaneResult.Err = context.Canceled) while
// the others continue; the batch as a whole runs under the server's
// lifetime context.
func (s *Server) executeBatch(lanes []*laneJob) {
	first := lanes[0].j.Req
	blanes := make([]mld.BatchLane, len(lanes))
	laneErrs := make([]error, len(lanes))
	laneDetail := strconv.Itoa(len(lanes)) + " lanes"
	for i, lj := range lanes {
		req := lj.j.Req
		lj.j.traceDisposition(DispBatchedLane, len(lanes))
		if tr := lj.j.trace; tr != nil {
			tr.stageDetail(StageBatchAssembled, laneDetail)
			tr.beginDP(req.plannedPhases())
		}
		bl := mld.BatchLane{
			K: req.K, ZMax: req.ZMax,
			Seed: req.Seed, Epsilon: req.Epsilon, Rounds: req.Rounds,
			Ctx: lj.f.ctx,
		}
		switch req.Kind {
		case KindTree:
			tpl, err := req.template()
			if err != nil {
				laneErrs[i] = err // validate() makes this unreachable; fail the lane, not the batch
			}
			bl.Template = tpl
		case KindMotif:
			spec, err := req.motifSpec()
			if err != nil {
				laneErrs[i] = err // validate() makes this unreachable too
			}
			bl.Motif = spec
		}
		blanes[i] = bl
	}
	start := time.Now()
	var results []mld.LaneResult
	var batchErr error
	entry, err := s.registry.get(first.Graph)
	switch {
	case err != nil:
		batchErr = err // graph evicted between admission and execution
	case first.Ranks > 1:
		results, batchErr = s.batchDistributed(entry, first, blanes)
	default:
		results, batchErr = s.batchSequential(entry, first, blanes)
	}
	wall := time.Since(start).Seconds()
	s.rec.Add(obs.ServeBatches, 1)
	s.rec.Add(obs.ServeBatchLanes, int64(len(lanes)))
	s.rec.Observe(obs.HistServeBatchOccupancy, float64(len(lanes)))
	for i, lj := range lanes {
		s.rec.Observe(obs.HistServeLaneCost, wall/float64(len(lanes)))
		s.rec.Observe(obs.HistServeQueryLatency, wall)
		var res *Result
		err := laneErrs[i]
		if err == nil {
			switch {
			case results != nil:
				lr := results[i]
				res = &Result{
					Kind: lj.j.Req.Kind, Found: lr.Found, Table: lr.Table,
					Rounds: lr.Rounds, Phases: lr.Phases, TotalPhases: lr.TotalPhases,
				}
				if tr := lj.j.trace; tr != nil {
					tr.setDPResult(lr.Phases, lr.TotalPhases)
				}
				err = lr.Err
			case batchErr != nil:
				err = batchErr
			default:
				err = errors.New("serve: batch produced no results")
			}
		}
		if err == nil {
			s.cache.put(lj.j.Key, res, res.size())
		}
		s.flights.finish(lj.f, res, err)
	}
}

// batchSequential dispatches to the shared-memory batched evaluators.
// The sweep geometry (N2, Workers) is the leader's; every lane keeps
// its own seeding, so answers match solo runs exactly.
func (s *Server) batchSequential(entry *graphEntry, first *QueryRequest, blanes []mld.BatchLane) ([]mld.LaneResult, error) {
	opt := mld.Options{
		N2: first.N2, Workers: first.Workers,
		Arena: s.arena, Ctx: s.baseCtx,
	}
	switch first.Kind {
	case KindPath:
		return mld.DetectPathBatch(entry.G, blanes, opt)
	case KindTree:
		return mld.DetectTreeBatch(entry.G, blanes, opt)
	case KindScanStat:
		return mld.ScanTableBatch(entry.G, blanes, opt)
	case KindMotif:
		return mld.DetectMotifBatch(entry.G, blanes, opt)
	default:
		return nil, errors.New("serve: unbatchable kind " + first.Kind)
	}
}

// batchDistributed runs the lanes on one in-process world via
// core.RunPathBatch, with the leader's partition (cached per graph —
// answers are partition-independent, so lanes with other seeds still
// match their solo runs).
func (s *Server) batchDistributed(entry *graphEntry, first *QueryRequest, blanes []mld.BatchLane) ([]mld.LaneResult, error) {
	scheme := partition.Scheme(first.Scheme)
	if scheme == "" {
		scheme = partition.SchemeBlock
	}
	n1 := first.N1
	if n1 <= 0 {
		n1 = first.Ranks
	}
	part, err := entry.partitionFor(scheme, n1, first.Seed^0x70a3d70a3d70a3d7)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		N1: n1, N2: first.N2, Seed: first.Seed, Scheme: scheme,
		Ctx: s.baseCtx, Part: part, NoTiming: true,
	}
	var results []mld.LaneResult
	run := func(c *comm.Comm) error {
		res, rerr := core.RunPathBatch(c, entry.G, cfg, core.BatchSpec{Lanes: blanes})
		if c.Rank() == 0 {
			results = res
		}
		return rerr
	}
	err = comm.RunLocal(first.Ranks, comm.CostModel{}, run)
	// Unwrap the world aggregation so clients see the cause directly.
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			err = context.DeadlineExceeded
		} else if errors.Is(err, context.Canceled) {
			err = context.Canceled
		}
	}
	return results, err
}
