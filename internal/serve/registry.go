package serve

import (
	"fmt"
	"sort"
	"sync"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/partition"
)

// graphEntry is one resident graph: loaded once, partitioned lazily per
// (scheme, parts, seed) and reused by every query that names it — the
// "persistent cluster" half of the service (the other half being the
// shared DP arena and the process-global coefficient tables, which are
// warm for any graph).
type graphEntry struct {
	Name   string
	G      *graph.Graph
	Digest uint64

	mu    sync.Mutex
	parts map[partKey]*partition.Partition
}

type partKey struct {
	scheme partition.Scheme
	n1     int
	seed   uint64
}

// partitionFor returns the cached partition for (scheme, n1, seed),
// computing it on first use. The returned partition's Members cache is
// materialized before it is published, so rank goroutines may share the
// pointer concurrently (core.Config.Part's contract).
func (e *graphEntry) partitionFor(scheme partition.Scheme, n1 int, seed uint64) (*partition.Partition, error) {
	key := partKey{scheme: scheme, n1: n1, seed: seed}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.parts[key]; ok {
		return p, nil
	}
	p, err := partition.ByScheme(scheme, e.G, n1, seed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.Parts; i++ {
		p.Members(i)
	}
	if e.parts == nil {
		e.parts = make(map[partKey]*partition.Partition)
	}
	e.parts[key] = p
	return p, nil
}

// registry is the named-graph table behind /v1/graphs.
type registry struct {
	mu sync.RWMutex
	m  map[string]*graphEntry
}

func newRegistry() *registry { return &registry{m: make(map[string]*graphEntry)} }

func (r *registry) get(name string) (*graphEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("unknown graph %q (load it via POST /v1/graphs first)", name)
	}
	return e, nil
}

// add registers g under name, replacing any previous graph of that
// name (and its partition cache).
func (r *registry) add(name string, g *graph.Graph) *graphEntry {
	e := &graphEntry{Name: name, G: g, Digest: g.Digest()}
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return e
}

func (r *registry) list() []*graphEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*graphEntry, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
