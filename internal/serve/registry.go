package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/partition"
	"github.com/midas-hpc/midas/internal/store"
)

// errUnknownGraph distinguishes "no such name" (a client error, 404)
// from a store load failure (a server problem) at the API layer.
var errUnknownGraph = errors.New("unknown graph")

// graphEntry is one registered graph: loaded once (or mapped lazily
// from the store on first query), partitioned lazily per (scheme,
// parts, seed) and reused by every query that names it — the
// "persistent cluster" half of the service (the other half being the
// shared DP arena and the process-global coefficient tables, which are
// warm for any graph).
type graphEntry struct {
	Name     string
	Digest   uint64
	Vertices int
	Edges    int

	// G is the resident graph. For store-backed entries it is nil
	// until the first query (ensure maps it); every consumer reaches
	// the entry through registry.get, which runs ensure first, so
	// execution paths may read G directly.
	G *graph.Graph

	st     *store.Store  // nil for purely in-memory entries
	loadMu sync.Mutex    // guards the lazy load
	handle *store.Handle // pins the mapping for the entry's lifetime

	mu    sync.Mutex
	parts map[partKey]*partition.Partition
}

type partKey struct {
	scheme partition.Scheme
	n1     int
	seed   uint64
}

// ensure materializes G. For store-backed entries the first call maps
// the repository file (zero-copy; pages fault in as the DP touches
// them) and pins the handle until the registry releases it.
func (e *graphEntry) ensure() error {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	if e.G != nil {
		return nil
	}
	h, err := e.st.Acquire(e.Digest)
	if err != nil {
		return fmt.Errorf("graph %q: %w", e.Name, err)
	}
	e.handle = h
	e.G = h.Graph()
	return nil
}

// release drops the entry's store pin. Only safe once no query can be
// running on e.G — the server calls it after the drain in Shutdown.
func (e *graphEntry) release() {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	if e.handle != nil {
		e.handle.Close()
		e.handle = nil
		e.G = nil
	}
}

// partitionFor returns the cached partition for (scheme, n1, seed),
// loading the store's persisted artifact when one exists and computing
// (then persisting) otherwise. The returned partition's Members cache
// is materialized before it is published, so rank goroutines may share
// the pointer concurrently (core.Config.Part's contract).
func (e *graphEntry) partitionFor(scheme partition.Scheme, n1 int, seed uint64) (*partition.Partition, error) {
	key := partKey{scheme: scheme, n1: n1, seed: seed}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.parts[key]; ok {
		return p, nil
	}
	skey := store.PartKey{Scheme: scheme, Parts: n1, Seed: seed}
	if e.st != nil {
		if p, err := e.st.GetPartition(e.Digest, skey); err == nil {
			e.publishLocked(key, p)
			return p, nil
		}
		// ErrNoPartition or a corrupt artifact: recompute either way —
		// a rotted derived file must never fail a query.
	}
	p, err := partition.ByScheme(scheme, e.G, n1, seed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.Parts; i++ {
		p.Members(i)
	}
	if e.st != nil {
		// Best-effort write-through; the artifact is a pure cache.
		_ = e.st.PutPartition(e.Digest, skey, p)
	}
	e.publishLocked(key, p)
	return p, nil
}

func (e *graphEntry) publishLocked(key partKey, p *partition.Partition) {
	if e.parts == nil {
		e.parts = make(map[partKey]*partition.Partition)
	}
	e.parts[key] = p
}

// registry is the named-graph table behind /v1/graphs.
type registry struct {
	mu sync.RWMutex
	m  map[string]*graphEntry
}

func newRegistry() *registry { return &registry{m: make(map[string]*graphEntry)} }

// get resolves a name and materializes the entry's graph (lazy mmap
// for store-backed entries). Every execution path obtains entries
// here, which is what makes direct e.G reads downstream safe.
func (r *registry) get(name string) (*graphEntry, error) {
	r.mu.RLock()
	e, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (load it via POST /v1/graphs first)", errUnknownGraph, name)
	}
	if err := e.ensure(); err != nil {
		return nil, err
	}
	return e, nil
}

// peek resolves a name WITHOUT materializing the graph — identity and
// shape only, for placement decisions that must not force an mmap.
func (r *registry) peek(name string) (*graphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	return e, ok
}

// add registers g under name, replacing any previous graph of that
// name (and its partition cache). A replaced store-backed entry keeps
// its mapping pinned — an in-flight query may still be reading it; the
// bytes come back at shutdown (or process exit).
func (r *registry) add(name string, g *graph.Graph, st *store.Store) *graphEntry {
	e := &graphEntry{
		Name: name, G: g, Digest: g.Digest(),
		Vertices: g.NumVertices(), Edges: g.NumEdges(),
		st: st,
	}
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return e
}

// addStored registers a lazy entry for a graph already in the store:
// nothing is read or mapped until the first query names it. Shape
// comes from the manifest so listings stay IO-free.
func (r *registry) addStored(name string, ni store.NameInfo, st *store.Store) *graphEntry {
	e := &graphEntry{
		Name: name, Digest: ni.Digest,
		Vertices: ni.Vertices, Edges: ni.Edges,
		st: st,
	}
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return e
}

func (r *registry) list() []*graphEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*graphEntry, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *registry) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// releaseAll drops every store pin. Called after the drain in
// Shutdown, when no query can be running.
func (r *registry) releaseAll() {
	for _, e := range r.list() {
		e.release()
	}
}
