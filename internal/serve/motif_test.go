package serve

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

// labeledGraph builds the deterministic colored graph used on both
// sides of the serve-vs-library comparisons.
func labeledGraph(n, m int, seed uint64, colors int) *graph.Graph {
	g := graph.RandomGNM(n, m, seed)
	r := rand.New(rand.NewSource(int64(seed)))
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(r.Intn(colors))
	}
	g.SetLabels(labels)
	return g
}

// TestMotifQueryLifecycle: load a labeled graph through the API, run a
// motif query, check it against the library, and require the repeat to
// be a cache hit.
func TestMotifQueryLifecycle(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	base := "http://" + s.Addr()

	// A 6-path colored 0,1,0,1,0,1: it contains a connected 4-subgraph
	// with two of each color, but none with three 1s.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	labels := []int32{0, 1, 0, 1, 0, 1}
	resp, body := postJSON(t, base+"/v1/graphs", GraphRequest{Name: "colored", N: 6, Edges: edges, Labels: labels})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add labeled graph: %d %s", resp.StatusCode, body)
	}

	oracle := graph.FromEdges(6, edges)
	oracle.SetLabels(labels)
	q := QueryRequest{Graph: "colored", Kind: KindMotif, K: 4,
		Motif: map[string]int{"0": 2, "1": 2}, Seed: 3, Rounds: 2}
	resp, body = postJSON(t, base+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("motif query: %d %s", resp.StatusCode, body)
	}
	first := decodeJob(t, body)
	if first.Status != StatusDone || first.Result == nil {
		t.Fatalf("motif query not done: %s", body)
	}
	want, err := mld.DetectMotif(oracle, &mld.MotifSpec{K: 4, Counts: map[int32]int{0: 2, 1: 2}},
		mld.Options{Seed: 3, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Result.Found != want {
		t.Fatalf("served %v, library %v", first.Result.Found, want)
	}
	if !want {
		t.Fatal("oracle says the {0:2, 1:2} motif is absent from a 0,1-alternating path")
	}

	resp, body = postJSON(t, base+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat motif query: %d %s", resp.StatusCode, body)
	}
	if second := decodeJob(t, body); second.Result == nil || !second.Result.Cached {
		t.Fatalf("repeat was not served from cache: %s", body)
	}

	// Same query, different constraint: must NOT hit the first query's
	// cache entry (the constraint is part of the key) and the answer
	// flips — three 1s never sit in one connected 4-subgraph here.
	q2 := q
	q2.Motif = map[string]int{"1": 3}
	resp, body = postJSON(t, base+"/v1/query", q2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("constrained query: %d %s", resp.StatusCode, body)
	}
	third := decodeJob(t, body)
	if third.Result == nil || third.Result.Cached {
		t.Fatalf("different constraint served from cache: %s", body)
	}
	if third.Result.Found {
		t.Fatal("found three color-1 vertices in a connected 4-subgraph of an alternating path")
	}

	// Mismatched labels are rejected at load time.
	resp, body = postJSON(t, base+"/v1/graphs", GraphRequest{Name: "bad", N: 6, Edges: edges, Labels: []int32{0, 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short label list accepted: %d %s", resp.StatusCode, body)
	}
}

// TestMotifSingleflight: identical concurrent motif queries share one
// DP execution.
func TestMotifSingleflight(t *testing.T) {
	s := testServer(t, Config{Workers: 4})
	base := "http://" + s.Addr()
	s.AddGraph("big", labeledGraph(150, 600, 2, 3))
	q := QueryRequest{Graph: "big", Kind: KindMotif, K: 14,
		Motif: map[string]int{"0": 2, "2": 1}, Seed: 5, Rounds: 1, N2: 64}

	var wg sync.WaitGroup
	results := make([]JobView, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/query", q)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeJob(t, body)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if results[0].Result.Found != results[1].Result.Found {
		t.Fatal("shared motif queries disagree")
	}
	_, metrics := getBody(t, base+"/metrics")
	if misses := metricValue(t, string(metrics), "midas_serve_cache_misses_total"); misses != 1 {
		t.Fatalf("DP ran %v times for two identical concurrent motif queries, want exactly 1", misses)
	}
}

// TestBatchMotif: concurrent motif queries with different constraints
// co-admit into one batched execution; a path query in the same window
// must not share it. Every answer still matches the library.
func TestBatchMotif(t *testing.T) {
	s := testServer(t, Config{Workers: 1, BatchWindow: 250 * time.Millisecond, BatchMaxLanes: 8})
	base := "http://" + s.Addr()
	g := labeledGraph(60, 180, 9, 3)
	s.AddGraph("lg", labeledGraph(60, 180, 9, 3))

	motifs := []QueryRequest{
		{Graph: "lg", Kind: KindMotif, K: 4, Motif: map[string]int{"0": 1, "1": 1}, Seed: 60, Rounds: 1},
		{Graph: "lg", Kind: KindMotif, K: 6, Motif: map[string]int{"2": 3}, Seed: 61, Rounds: 1},
		{Graph: "lg", Kind: KindMotif, K: 5, Motif: nil, Seed: 62, Rounds: 1},
		{Graph: "lg", Kind: KindMotif, K: 5, Motif: map[string]int{"0": 5}, Seed: 63, Rounds: 1},
	}
	odd := QueryRequest{Graph: "lg", Kind: KindPath, K: 5, Seed: 64, Rounds: 1}
	reqs := append(append([]QueryRequest{}, motifs...), odd)

	var wg sync.WaitGroup
	results := make([]JobView, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/query", reqs[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeJob(t, body)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, r := range reqs {
		var want bool
		var err error
		if r.Kind == KindPath {
			want, err = mld.DetectPath(g, r.K, mld.Options{Seed: r.Seed, Rounds: 1})
		} else {
			spec := &mld.MotifSpec{K: r.K, Counts: map[int32]int{}}
			for cs, m := range r.Motif {
				spec.Counts[int32(cs[0]-'0')] = m
			}
			want, err = mld.DetectMotif(g, spec, mld.Options{Seed: r.Seed, Rounds: 1})
		}
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Result == nil || results[i].Result.Found != want {
			t.Fatalf("query %d (%s): got %+v, library %v", i, r.Kind, results[i].Result, want)
		}
	}
	_, metrics := getBody(t, base+"/metrics")
	if batches := metricValue(t, string(metrics), "midas_serve_batches_total"); batches < 1 {
		t.Fatalf("no batched execution recorded (batches=%v)", batches)
	}
}

// TestMotifCancelMidFlight: DELETE on a slow async motif query cancels
// it mid-sweep, with the phase counters proving the early exit.
func TestMotifCancelMidFlight(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()
	s.AddGraph("big", labeledGraph(300, 1200, 4, 3))
	wait := false
	q := QueryRequest{Graph: "big", Kind: KindMotif, K: 16,
		Motif: map[string]int{"0": 4, "1": 4}, Seed: 2, Rounds: 1, N2: 32, Wait: &wait}
	resp, body := postJSON(t, base+"/v1/query", q)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	v := decodeJob(t, body)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, jb := getBody(t, base+"/v1/jobs/"+v.ID)
		if decodeJob(t, jb).Status == StatusRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		_, jb := getBody(t, base+"/v1/jobs/"+v.ID)
		jv := decodeJob(t, jb)
		if jv.Status == StatusCancelled {
			if jv.Result != nil && jv.Result.TotalPhases > 0 && jv.Result.Phases >= jv.Result.TotalPhases {
				t.Fatalf("phases %d/%d: sweep finished despite the cancel", jv.Result.Phases, jv.Result.TotalPhases)
			}
			return
		}
		if jv.Status == StatusDone || jv.Status == StatusFailed {
			t.Fatalf("job finished as %s instead of cancelled", jv.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never reached cancelled state")
}

// TestMotifBadRequests: malformed constraints are rejected before
// admission.
func TestMotifBadRequests(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()
	for _, q := range []QueryRequest{
		{Graph: "g", Kind: KindMotif, K: 3, Motif: map[string]int{"0": 4}},   // counts exceed k
		{Graph: "g", Kind: KindMotif, K: 3, Motif: map[string]int{"0": 0}},   // non-positive count
		{Graph: "g", Kind: KindMotif, K: 3, Motif: map[string]int{"huh": 1}}, // unparsable color
		{Graph: "g", Kind: KindMotif, K: 0, Motif: map[string]int{"0": 1}},   // bad k
	} {
		resp, body := postJSON(t, base+"/v1/query", q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad motif %+v accepted: %d %s", q.Motif, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "error") {
			t.Fatalf("no error payload: %s", body)
		}
	}
}
