package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// Query kinds.
const (
	KindPath     = "path"
	KindTree     = "tree"
	KindScanStat = "scanstat"
	KindMotif    = "motif"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Graph string `json:"graph"`
	Kind  string `json:"kind"`
	K     int    `json:"k,omitempty"` // path/scanstat size; tree derives k from the template

	Template [][2]int32     `json:"template,omitempty"` // tree edge list
	ZMax     int64          `json:"zmax,omitempty"`     // scanstat weight cap
	Motif    map[string]int `json:"motif,omitempty"`    // motif color → minimum count (JSON keys are decimal colors)

	Seed    uint64  `json:"seed,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Rounds  int     `json:"rounds,omitempty"`
	N2      int     `json:"n2,omitempty"`
	Workers int     `json:"workers,omitempty"` // shared-memory DP workers (ranks ≤ 1)

	Ranks  int    `json:"ranks,omitempty"`  // >1 = distributed in-process world
	N1     int    `json:"n1,omitempty"`     // graph parts; default ranks
	Scheme string `json:"scheme,omitempty"` // partition scheme; default "block"

	TimeoutMillis int64 `json:"timeoutMillis,omitempty"` // per-query deadline
	Wait          *bool `json:"wait,omitempty"`          // default true: block until terminal
}

func (r *QueryRequest) wait() bool { return r.Wait == nil || *r.Wait }

func (r *QueryRequest) template() (*graph.Template, error) {
	if len(r.Template) == 0 {
		return nil, errors.New("tree query needs a template edge list")
	}
	k := int32(0)
	for _, e := range r.Template {
		if e[0] > k {
			k = e[0]
		}
		if e[1] > k {
			k = e[1]
		}
	}
	return graph.NewTemplate(int(k)+1, r.Template)
}

// motifSpec builds the query's constraint. JSON object keys are
// strings, so colors arrive as decimal text ("2": 1).
func (r *QueryRequest) motifSpec() (*mld.MotifSpec, error) {
	counts := make(map[int32]int, len(r.Motif))
	for cs, m := range r.Motif {
		c, err := strconv.ParseInt(cs, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("motif color %q: %v", cs, err)
		}
		counts[int32(c)] = m
	}
	spec := &mld.MotifSpec{K: r.K, Counts: counts}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// validate normalizes the request and rejects malformed ones before
// admission, so the queue only ever holds runnable queries.
func (r *QueryRequest) validate() error {
	if r.Graph == "" {
		return errors.New("missing graph name")
	}
	switch r.Kind {
	case KindPath, KindScanStat:
		if err := mld.ValidateK(r.K); err != nil {
			return err
		}
		if r.Kind == KindScanStat && r.ZMax < 0 {
			return fmt.Errorf("negative zmax %d", r.ZMax)
		}
	case KindTree:
		tpl, err := r.template()
		if err != nil {
			return err
		}
		r.K = tpl.K()
		if err := mld.ValidateK(r.K); err != nil {
			return err
		}
	case KindMotif:
		if _, err := r.motifSpec(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown query kind %q (want path, tree, scanstat, or motif)", r.Kind)
	}
	if r.Ranks > 1 {
		n1 := r.N1
		if n1 <= 0 {
			n1 = r.Ranks
		}
		if r.Ranks%n1 != 0 {
			return fmt.Errorf("n1=%d must divide ranks=%d", n1, r.Ranks)
		}
	}
	return nil
}

// batch mirrors mld.Options.batch for the phase-count plan.
func (r *QueryRequest) batch() int {
	n2 := r.N2
	if n2 <= 0 {
		n2 = 128
	}
	if total := 1 << uint(r.K); n2 > total {
		n2 = total
	}
	return n2
}

// plannedPhases is the full sweep's phase count for one round — what
// Phases would reach if a single-round query ran to completion
// (scanstat runs one sweep per size j ≤ k; this reports the size-k
// sweep, the dominant term).
func (r *QueryRequest) plannedPhases() int64 {
	n2 := uint64(r.batch())
	total := uint64(1) << uint(r.K)
	return int64((total + n2 - 1) / n2)
}

// key is the query's cache/singleflight identity: the graph's content
// digest plus every parameter that selects what is computed and how it
// is seeded or placed. Workers is deliberately excluded — shared-memory
// worker count provably never changes the totals.
func (r *QueryRequest) key(digest uint64) string {
	const prime = 1099511628211
	tpl := uint64(0)
	if len(r.Template) > 0 {
		h := uint64(14695981039346656037)
		for _, e := range r.Template {
			h ^= uint64(uint32(e[0]))
			h *= prime
			h ^= uint64(uint32(e[1]))
			h *= prime
		}
		tpl = h
	}
	motif := uint64(0)
	if len(r.Motif) > 0 {
		// Canonical order: sorted color keys, so equal constraints hash
		// equal regardless of map iteration.
		keys := make([]string, 0, len(r.Motif))
		for c := range r.Motif {
			keys = append(keys, c)
		}
		sort.Strings(keys)
		h := uint64(14695981039346656037)
		for _, c := range keys {
			for i := 0; i < len(c); i++ {
				h ^= uint64(c[i])
				h *= prime
			}
			h ^= uint64(uint32(r.Motif[c]))
			h *= prime
		}
		motif = h
	}
	return fmt.Sprintf("g=%016x|kind=%s|k=%d|tpl=%016x|z=%d|mo=%016x|seed=%d|eps=%g|r=%d|n2=%d|ranks=%d|n1=%d|sch=%s",
		digest, r.Kind, r.K, tpl, r.ZMax, motif, r.Seed, r.Epsilon, r.Rounds, r.N2, r.Ranks, r.N1, r.Scheme)
}

// Result is a finished query's payload.
type Result struct {
	Kind  string   `json:"kind"`
	Found bool     `json:"found,omitempty"`
	Table [][]bool `json:"table,omitempty"`
	// Cached marks a result served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Rounds/Phases are the DP execution counters; for a query stopped
	// by its deadline, Phases < TotalPhases is the proof it did not
	// finish the 2^k sweep.
	Rounds      int64 `json:"rounds"`
	Phases      int64 `json:"phases"`
	TotalPhases int64 `json:"totalPhases,omitempty"`
}

func (r *Result) cachedCopy() *Result {
	c := *r
	c.Cached = true
	return &c
}

// size approximates the result's retained bytes for the cache bound.
func (r *Result) size() int64 {
	n := int64(128)
	for _, row := range r.Table {
		n += int64(len(row)) + 24
	}
	return n
}

// JobView is the API's job representation (POST /v1/query responses
// and GET /v1/jobs/{id}).
type JobView struct {
	ID        string  `json:"id"`
	Status    string  `json:"status"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
	RunMillis float64 `json:"runMillis,omitempty"`
}

// GraphRequest is the body of POST /v1/graphs: load a graph under a
// name, from an inline edge list, a server-local file, or a seeded
// generator (handy for smoke tests).
type GraphRequest struct {
	Name    string      `json:"name"`
	Path    string      `json:"path,omitempty"`  // server-local file (graph.Load formats)
	N       int         `json:"n,omitempty"`     // inline: vertex count
	Edges   [][2]int32  `json:"edges,omitempty"` // inline: edge list
	Weights []int64     `json:"weights,omitempty"`
	Labels  []int32     `json:"labels,omitempty"` // per-vertex colors (motif queries)
	Random  *RandomSpec `json:"random,omitempty"`
}

// RandomSpec asks the server to generate an Erdős–Rényi n·ln n graph.
type RandomSpec struct {
	N    int    `json:"n"`
	Seed uint64 `json:"seed"`
}

// GraphView describes a resident graph.
type GraphView struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Digest   string `json:"digest"` // hex of graph.Digest()
}

func graphView(e *graphEntry) GraphView {
	// Shape comes from the entry, not e.G: a store-backed graph may not
	// be mapped yet, and listings must not force the map.
	return GraphView{
		Name:     e.Name,
		Vertices: e.Vertices,
		Edges:    e.Edges,
		Digest:   strconv.FormatUint(e.Digest, 16),
	}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/graphs              load/register a graph
//	GET    /v1/graphs              list resident graphs
//	POST   /v1/query               run (or join, or hit the cache for) a query
//	GET    /v1/jobs/{id}           job status and result
//	DELETE /v1/jobs/{id}           cancel a job
//	GET    /v1/debug/requests      flight recorder + live service snapshot
//	GET    /v1/debug/requests/{id} one request's stage timeline
//	GET    /v1/debug/trace         flight recorder as Chrome trace JSON
//	GET    /metrics                Prometheus text format (midas_serve_* series)
//	GET    /healthz                liveness
//	/debug/pprof/                  standard profiler
//
// The whole tree runs behind the request-ID/recovery/access-log
// middleware: every response carries X-Midas-Request-Id.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleAddGraph)
	mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /v1/debug/requests/{id}", s.handleDebugRequest)
	mux.HandleFunc("GET /v1/debug/trace", s.handleDebugTrace)
	source := obs.SnapshotSource(s.rec)
	mux.Handle("GET /metrics", obs.MetricsHandler(source, s.gauges))
	mux.Handle("GET /healthz", obs.HealthzHandler(source))
	obs.RegisterPprof(mux)
	if s.extraRoutes != nil {
		s.extraRoutes(mux)
	}
	return s.middleware(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// apiError is the uniform error envelope: every non-2xx response body
// is {error, request_id}, so a client (or an operator grepping logs)
// can correlate any failure with its access-log line and flight-recorder
// trace by ID.
type apiError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeErr(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...), RequestID: requestIDOf(r)})
}

// Backoff hints on load-shedding responses, so fleet-internal
// forwarding and external clients sleep instead of hot-looping. Queue
// pressure clears in about a query's latency; a drain means the
// process is going away and the client should find another replica.
const (
	retryAfterQueueFull = "1"  // seconds; 429
	retryAfterDraining  = "10" // seconds; 503
)

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterDraining)
		writeErr(w, r, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req GraphRequest
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad graph request: %v", err)
		return
	}
	if req.Name == "" {
		writeErr(w, r, http.StatusBadRequest, "missing graph name")
		return
	}
	var g *graph.Graph
	switch {
	case req.Path != "":
		var err error
		g, err = graph.Load(req.Path)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, "load %s: %v", req.Path, err)
			return
		}
	case req.Random != nil:
		if req.Random.N <= 0 {
			writeErr(w, r, http.StatusBadRequest, "random graph needs n > 0")
			return
		}
		g = graph.RandomNLogN(req.Random.N, req.Random.Seed)
	case req.N > 0:
		g = graph.FromEdges(req.N, req.Edges)
	default:
		writeErr(w, r, http.StatusBadRequest, "graph request needs path, random, or n+edges")
		return
	}
	if len(req.Weights) > 0 {
		if len(req.Weights) != g.NumVertices() {
			writeErr(w, r, http.StatusBadRequest, "%d weights for %d vertices", len(req.Weights), g.NumVertices())
			return
		}
		g.SetWeights(req.Weights)
	}
	if len(req.Labels) > 0 {
		if len(req.Labels) != g.NumVertices() {
			writeErr(w, r, http.StatusBadRequest, "%d labels for %d vertices", len(req.Labels), g.NumVertices())
			return
		}
		g.SetLabels(req.Labels)
	}
	digest := s.AddGraph(req.Name, g)
	s.logger.Info("graph registered",
		"name", req.Name, "vertices", g.NumVertices(), "edges", g.NumEdges(),
		"digest", strconv.FormatUint(digest, 16))
	e, err := s.registry.get(req.Name)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	if s.graphAdded != nil {
		s.graphAdded(e.Name, e.Digest, e.Vertices, e.Edges)
	}
	writeJSON(w, http.StatusOK, graphView(e))
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	entries := s.registry.list()
	out := make([]GraphView, 0, len(entries))
	for _, e := range entries {
		out = append(out, graphView(e))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterDraining)
		writeErr(w, r, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Cluster routing: the hook may proxy the query to a shard owner
	// and fully handle the exchange; a false return serves it here.
	if s.queryRouter != nil && s.queryRouter(w, r) {
		return
	}
	var req QueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, 4<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	entry, err := s.registry.get(req.Graph)
	if err != nil {
		// Unknown name is the client's mistake; a store map failure
		// (missing or corrupt repository file) is ours.
		code := http.StatusNotFound
		if !errors.Is(err, errUnknownGraph) {
			code = http.StatusInternalServerError
		}
		writeErr(w, r, code, "%v", err)
		return
	}
	// Auto-plan unset execution knobs from the graph's shape and the
	// current load — before the cache key is computed, so the chosen
	// plan is part of the query's identity. Answers do not depend on
	// the plan (the equivalence suites pin this); only performance.
	if s.cfg.AutoTune {
		if req.N2 <= 0 {
			req.N2 = core.AutoPlanN2(entry.Vertices, req.K, s.loadLevel())
		}
		if req.Ranks > 1 && req.N1 <= 0 {
			req.N1 = core.AutoPlanN1(entry.Vertices, req.Ranks)
		}
	}
	key := req.key(entry.Digest)
	ri := s.requestInfo(r)
	tr := newQueryTrace(ri.id, ri.received, &req, entry.Digest)
	s.flightRec.start(tr)

	// Fast path: an identical finished query — the trace never becomes
	// a job: received → cache-hit → done, all on the handler goroutine.
	if res, ok := s.cache.get(key); ok {
		s.rec.Add(obs.ServeCacheHits, 1)
		tr.setDisposition(DispCacheHit, 0)
		tr.stage(StageCacheHit)
		s.finishTrace(tr, StatusDone, nil)
		writeJSON(w, http.StatusOK, JobView{Status: StatusDone, Result: res.cachedCopy()})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	j := s.jobs.newJob(s.baseCtx, key, &req, timeout)
	j.digest = entry.Digest
	j.trace = tr
	j.finishHook = s.completeTrace
	tr.setJob(j.ID)
	// Stage "queued" before the push: once pushed, a worker may stamp
	// "admitted" at any instant, and the timeline must stay monotone.
	tr.stage(StageQueued)
	if s.queue.push(j) {
		s.rec.Add(obs.ServeAdmitted, 1)
		s.logger.Debug("query admitted",
			"requestId", ri.id, "jobId", j.ID, "kind", req.Kind, "graph", req.Graph, "k", req.K)
	} else {
		s.rec.Add(obs.ServeRejected, 1)
		j.finish(StatusFailed, nil, errors.New("admission queue full"))
		w.Header().Set("Retry-After", retryAfterQueueFull)
		writeErr(w, r, http.StatusTooManyRequests, "admission queue full (depth %d)", s.cfg.QueueDepth)
		return
	}

	if !req.wait() {
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	select {
	case <-j.done:
		writeJobView(w, j)
	case <-r.Context().Done():
		// Client went away; stop charging them for the answer.
		j.cancel()
		<-j.done
		writeJobView(w, j)
	}
}

// writeJobView maps a terminal job to its HTTP status: 200 for done
// and client-side cancels, 504 for a query killed by its deadline, 500
// for other failures.
func writeJobView(w http.ResponseWriter, j *job) {
	v := j.view()
	code := http.StatusOK
	j.mu.Lock()
	err := j.err
	j.mu.Unlock()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case v.Status == StatusFailed:
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, v)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.logger.Info("job cancel requested", "jobId", j.ID, "requestId", requestIDOf(r))
	j.cancel()
	writeJSON(w, http.StatusOK, j.view())
}
