// Package serve is midas-serve: a long-running multi-tenant query
// service over the MIDAS detectors. Graphs are loaded once into a
// registry and reused by every query that names them — together with
// the per-graph partition cache, the shared DP slab arena, and the
// process-global GF coefficient tables, a resident process answers
// repeated queries without re-paying any setup cost.
//
// The request path is: bounded admission queue (full → 429, draining →
// 503) → worker pool → singleflight dedup (identical in-flight queries
// share one DP execution) → LRU result cache (a repeat of any finished
// query is answered without running the DP). Every query runs under a
// context assembled from the server's lifetime, the request deadline,
// and the singleflight membership, threaded down into the evaluators'
// round/batch loops — an abandoned or timed-out query stops burning
// its 2^k iterations at the next batch boundary.
//
// With Config.BatchWindow > 0, a worker additionally holds each
// batchable query for the window and sweeps the queue for compatible
// ones (same graph digest, kind and rank layout), running them as
// lanes of one multi-query DP execution (internal/mld's batch
// evaluators; core.RunPathBatch when distributed). Singleflight and
// the cache compose in front of batching — only flight leaders become
// lanes — and cancellation stays per-query: a dead lane is masked out
// of the batch while its batch-mates finish. Answers are byte-identical
// to solo execution.
//
// docs/SERVING.md is the operator guide: API reference, admission,
// caching and deadline semantics, and capacity tuning. docs/BATCHING.md
// covers the batching design and its metrics.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/store"
)

// Config tunes the service. The zero value is usable; every field has
// a serving-appropriate default.
type Config struct {
	// QueueDepth bounds the admission queue; a query arriving with the
	// queue full is rejected with 429. Default 64.
	QueueDepth int
	// Workers is the number of concurrent query executions. Default 2.
	Workers int
	// CacheMaxEntries / CacheMaxBytes bound the result cache.
	// Defaults 1024 entries, 64 MiB.
	CacheMaxEntries int
	CacheMaxBytes   int64
	// ArenaMaxBytes / ArenaMaxClasses bound the shared DP slab arena
	// (see mld.NewArenaCap). Defaults are the mld package defaults.
	ArenaMaxBytes   int64
	ArenaMaxClasses int
	// DefaultTimeout applies to queries that set no timeoutMillis.
	// Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxJobs bounds the finished-job table. Default 4096.
	MaxJobs int
	// BatchWindow, when positive, enables admission batching: a worker
	// picking up a query waits up to this long, harvesting compatible
	// queued queries (same graph/kind/world shape) into one batched DP
	// execution. Zero — the default — disables batching entirely; every
	// query runs solo exactly as before. A few milliseconds is a
	// sensible window (docs/BATCHING.md discusses the tradeoff).
	BatchWindow time.Duration
	// BatchMaxLanes caps the lanes per batched execution. Default 16,
	// hard cap mld.MaxBatchLanes.
	BatchMaxLanes int
	// Logger receives the service's structured logs: the per-request
	// HTTP access log, the per-query access log (request ID, identity,
	// disposition, stage latencies, status), lifecycle events, and the
	// slow-query log. Nil — the default — discards everything at zero
	// formatting cost. cmd/midas-serve installs a JSON handler on
	// stderr, leveled by -log-level.
	Logger *slog.Logger
	// SlowQuery, when positive, logs any query whose total latency
	// (received → terminal) meets the threshold at Warn level and
	// counts it in the serve-slow-queries counter. Zero disables.
	SlowQuery time.Duration
	// FlightRecorderSize bounds the ring of completed query traces the
	// flight recorder retains for GET /v1/debug/requests (in-flight
	// traces are always all held). Default 256.
	FlightRecorderSize int
	// AutoTune, when set, fills a query's unset N2 (and, for
	// distributed queries, unset N1) from core.AutoPlanN2/AutoPlanN1 —
	// graph size and current load pick the plan instead of static
	// defaults. Answers are plan-independent; only performance moves.
	// Cluster nodes enable this so every replica derives the same plan
	// for the same query (docs/CLUSTER.md).
	AutoTune bool
	// Store, when non-nil, backs the registry with a persistent
	// content-addressed graph repository (internal/store): graphs
	// POSTed to /v1/graphs are written through, every name in the
	// store's manifest is re-registered at startup, and a query naming
	// a stored graph maps its file zero-copy on first use — a restart
	// answers queries against previously-loaded graphs with no
	// re-parse. The server adopts the store's telemetry (store-hit/
	// miss/evict counters land in Recorder()) and releases its pins at
	// Shutdown; closing the store itself stays with whoever opened it.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheMaxEntries <= 0 {
		c.CacheMaxEntries = 1024
	}
	if c.CacheMaxBytes <= 0 {
		c.CacheMaxBytes = 64 << 20
	}
	if c.ArenaMaxBytes <= 0 {
		c.ArenaMaxBytes = mld.DefaultArenaMaxBytes
	}
	if c.ArenaMaxClasses <= 0 {
		c.ArenaMaxClasses = mld.DefaultArenaMaxClasses
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.BatchMaxLanes <= 0 {
		c.BatchMaxLanes = 16
	}
	if c.BatchMaxLanes > mld.MaxBatchLanes {
		c.BatchMaxLanes = mld.MaxBatchLanes
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
	return c
}

// Server is the query service. Construct with New, expose via Handler
// or Start, stop with Shutdown.
type Server struct {
	cfg       Config
	rec       *obs.Recorder // serve-plane counters and histograms
	arena     *mld.Arena    // DP slabs shared by every query execution
	registry  *registry
	cache     *resultCache
	flights   *flightGroup
	jobs      *jobTable
	queue     *admitQueue
	logger    *slog.Logger
	flightRec *flightRecorder

	started     time.Time
	idPrefix    string        // request-ID prefix, unique per process generation
	reqSeq      atomic.Uint64 // generated request-ID sequence
	workerState []atomic.Value

	baseCtx    context.Context // parent of every flight; cancelled at forced stop
	baseCancel context.CancelFunc
	draining   atomic.Bool
	inflight   atomic.Int64   // leaders currently executing a DP
	wg         sync.WaitGroup // workers
	followers  sync.WaitGroup // per-job resolution goroutines

	ln   net.Listener
	hsrv *http.Server

	// Cluster integration hooks (internal/cluster). All are set before
	// Start — the queue's mutex orders them before any worker read.
	distRunner  DistRunner          // intercepts ranks>1 queries
	clusterInfo func() any          // /v1/debug/requests cluster block
	extraGauges func() []obs.Metric // extra /metrics gauges
	queryRouter func(http.ResponseWriter, *http.Request) bool
	graphAdded  func(name string, digest uint64, vertices, edges int)
	extraRoutes func(*http.ServeMux)
}

// DistRunner is the cluster hook for distributed queries: given a
// ranks>1 query it may run the DP across a fleet of replicas instead
// of the in-process world. handled=false means the hook declined (no
// peers, unsupported shape) and the server falls back to the local
// world — the degrade path when the fleet cannot assemble. Counters
// the runner adds to rec surface as the result's Rounds/Phases.
type DistRunner func(ctx context.Context, req *QueryRequest, rec *obs.Recorder, res *Result, tr *QueryTrace) (handled bool, err error)

// SetDistributedRunner installs the cluster's distributed-query hook.
// Call before Start.
func (s *Server) SetDistributedRunner(fn DistRunner) { s.distRunner = fn }

// SetClusterInfo installs a provider for the cluster block of
// GET /v1/debug/requests. Call before Start.
func (s *Server) SetClusterInfo(fn func() any) { s.clusterInfo = fn }

// SetExtraGauges appends provider-supplied gauges (cluster membership,
// placement state) to /metrics. Call before Start.
func (s *Server) SetExtraGauges(fn func() []obs.Metric) { s.extraGauges = fn }

// SetQueryRouter installs the cluster's routing hook in front of
// POST /v1/query, inside the middleware (the hook sees the assigned
// request ID). Returning true means the hook fully handled the request
// (forwarded it to a shard owner); false falls through to local
// serving. The hook may read the body as long as it restores r.Body
// on the false path. Call before Start.
func (s *Server) SetQueryRouter(fn func(http.ResponseWriter, *http.Request) bool) {
	s.queryRouter = fn
}

// SetGraphAdded installs a callback invoked synchronously after every
// successful POST /v1/graphs registration, before the response is
// written — the cluster replicates and announces the graph here, so a
// 200 means the fleet knows it. Call before Start.
func (s *Server) SetGraphAdded(fn func(name string, digest uint64, vertices, edges int)) {
	s.graphAdded = fn
}

// SetExtraRoutes registers additional routes (the /v1/cluster/* plane)
// on the API mux, inside the request-ID/recovery/access-log
// middleware. Call before Start/Handler.
func (s *Server) SetExtraRoutes(fn func(*http.ServeMux)) { s.extraRoutes = fn }

// Store returns the configured graph repository (nil without one).
func (s *Server) Store() *store.Store { return s.cfg.Store }

// Logger returns the server's structured logger (never nil).
func (s *Server) Logger() *slog.Logger { return s.logger }

// LookupGraph resolves a registered graph's identity without forcing
// a store map — the shape comes from the registry entry.
func (s *Server) LookupGraph(name string) (digest uint64, vertices, edges int, ok bool) {
	e, found := s.registry.peek(name)
	if !found {
		return 0, 0, 0, false
	}
	return e.Digest, e.Vertices, e.Edges, true
}

// AdoptStored registers a graph that already sits in the store (landed
// by shard handoff) under name: a lazy entry — nothing maps until the
// first query — plus the manifest binding so a restart finds it again.
func (s *Server) AdoptStored(name string, digest uint64, vertices, edges int) error {
	st := s.cfg.Store
	if st == nil {
		return errors.New("serve: no store configured")
	}
	if !st.Has(digest) {
		return fmt.Errorf("serve: adopt %q: digest %016x not in store", name, digest)
	}
	if err := st.SetName(name, digest, vertices, edges); err != nil {
		return err
	}
	s.registry.addStored(name, store.NameInfo{Digest: digest, Vertices: vertices, Edges: edges}, st)
	return nil
}

// New returns an idle server. Call Start (own listener) or mount
// Handler on an existing mux, then Shutdown when done.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	now := time.Now()
	s := &Server{
		cfg:         cfg,
		rec:         obs.NewRecorder(0, nil),
		arena:       mld.NewArenaCap(cfg.ArenaMaxBytes, cfg.ArenaMaxClasses),
		registry:    newRegistry(),
		cache:       newResultCache(cfg.CacheMaxEntries, cfg.CacheMaxBytes),
		flights:     newFlightGroup(),
		jobs:        newJobTable(cfg.MaxJobs),
		queue:       newAdmitQueue(cfg.QueueDepth),
		logger:      cfg.Logger,
		flightRec:   newFlightRecorder(cfg.FlightRecorderSize),
		started:     now,
		idPrefix:    fmt.Sprintf("r%08x-", uint32(now.UnixNano())),
		workerState: make([]atomic.Value, cfg.Workers),
		baseCtx:     ctx,
		baseCancel:  cancel,
	}
	if s.logger == nil {
		s.logger = slog.New(noopHandler{})
	}
	b := obs.GetBuildInfo()
	s.logger.Info("midas-serve starting",
		"version", b.Version, "goversion", b.GoVersion, "revision", b.ShortRevision(),
		"workers", cfg.Workers, "queueDepth", cfg.QueueDepth,
		"batchWindow", cfg.BatchWindow, "flightRecorder", cfg.FlightRecorderSize)
	if cfg.Store != nil {
		cfg.Store.SetRecorder(s.rec)
		// Re-register every manifest name as a lazy entry: the process
		// is query-ready immediately, and each graph's file maps on the
		// first query that names it.
		for name, ni := range cfg.Store.Names() {
			s.registry.addStored(name, ni, cfg.Store)
			s.logger.Info("graph restored from store",
				"name", name, "digest", fmt.Sprintf("%016x", ni.Digest),
				"vertices", ni.Vertices, "edges", ni.Edges)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// AddGraph registers g under name programmatically (the API equivalent
// is POST /v1/graphs). Replaces any previous graph of that name. With
// a store configured the graph is written through (content-addressed,
// so re-adding is a free no-op) and the name bound in the manifest —
// a restarted process finds it again.
func (s *Server) AddGraph(name string, g *graph.Graph) uint64 {
	e := s.registry.add(name, g, s.cfg.Store)
	if s.cfg.Store != nil {
		if err := s.writeThrough(name, g, e.Digest); err != nil {
			s.logger.Warn("store write-through failed", "name", name, "error", err.Error())
		}
	}
	return e.Digest
}

// writeThrough persists a freshly-registered graph and its name
// binding. Failure leaves the graph serving from memory — persistence
// degrades, queries do not.
func (s *Server) writeThrough(name string, g *graph.Graph, digest uint64) error {
	if _, _, err := s.cfg.Store.Put(g); err != nil {
		return err
	}
	return s.cfg.Store.SetName(name, digest, g.NumVertices(), g.NumEdges())
}

// Start binds addr (":0" picks a free port; read it back with Addr)
// and serves the API until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.Handler()}
	go s.hsrv.Serve(ln) //nolint:errcheck // ErrServerClosed on Shutdown
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the service: new admissions get 503 immediately,
// queued and in-flight queries are given until ctx's deadline to
// finish, then everything still running is cancelled. Always stops the
// workers and the HTTP listener before returning.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.logger.Info("draining", "queued", s.queue.len(), "inflight", s.inflight.Load())
	drained := s.awaitIdle(ctx)
	// Cut off whatever remains (no-op when drained cleanly).
	s.baseCancel()
	s.queue.close()
	s.wg.Wait()
	// Queued jobs no worker picked up: fail them out.
	for _, j := range s.queue.drain() {
		s.finishErr(j, nil, errors.New("serve: shut down before execution"))
	}
	s.followers.Wait()
	// No query can be running now; drop the registry's store pins so
	// the mappings become evictable/unmappable.
	s.registry.releaseAll()
	var err error
	if s.hsrv != nil {
		if herr := s.hsrv.Shutdown(context.Background()); herr != nil {
			err = herr
		}
	}
	if !drained && err == nil {
		err = fmt.Errorf("serve: drain deadline expired with work in flight")
	}
	s.logger.Info("stopped", "drained", drained)
	return err
}

// awaitIdle polls until the queue is empty and no execution is in
// flight, or ctx expires. Reports whether the service went idle.
func (s *Server) awaitIdle(ctx context.Context) bool {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.queue.len() == 0 && s.inflight.Load() == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-tick.C:
		}
	}
}

// Recorder exposes the serve-plane recorder (counters named serve-*,
// queue-wait and query-latency histograms) for embedding in a larger
// telemetry surface.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// worker executes queued jobs until the server stops. Its id indexes
// the workerState table the debug snapshot reads.
func (s *Server) worker(id int) {
	defer s.wg.Done()
	for {
		s.workerState[id].Store("idle")
		j, ok := s.queue.popWait()
		if !ok {
			s.workerState[id].Store("stopped")
			return
		}
		s.runJob(id, j)
	}
}

// runJob takes one admitted job through cache, singleflight, and
// execution — batched when admission batching is on and the query is
// batchable, solo otherwise. Followers do not occupy the worker: they
// are parked on a resolution goroutine and the worker moves on.
func (s *Server) runJob(wid int, j *job) {
	if s.cfg.BatchWindow > 0 && batchable(j) {
		s.workerState[wid].Store("batching")
		s.runBatched(j)
		return
	}
	s.workerState[wid].Store("running")
	lj, ok := s.prepLane(j)
	if !ok {
		return
	}
	s.inflight.Add(1)
	s.executeLane(lj)
	s.inflight.Add(-1)
}

// completeTrace is every job's finish hook: it closes the job's trace
// with the terminal status and hands it to finishTrace. Set at job
// creation, invoked exactly once from job.finish — so every completion
// path (settle, finishErr, drain failures, queue-full rejects) feeds
// the flight recorder and the query access log.
func (s *Server) completeTrace(j *job) {
	if j.trace == nil {
		return
	}
	j.mu.Lock()
	status, err := j.status, j.err
	j.mu.Unlock()
	s.finishTrace(j.trace, status, err)
}

// finishTrace finalizes a query trace: terminal stage, flight-recorder
// retirement (counting ring evictions), the dp-time histogram, the
// structured query access log, and the slow-query log.
func (s *Server) finishTrace(tr *QueryTrace, status string, err error) {
	tr.finish(status, err)
	if ev := s.flightRec.complete(tr); ev > 0 {
		s.rec.Add(obs.ServeTraceEvictions, ev)
	}
	v := tr.view()
	if v.DPMillis > 0 {
		s.rec.Observe(obs.HistServeDPTime, v.DPMillis/1e3)
	}
	attrs := []any{
		"requestId", v.ID, "jobId", v.JobID, "kind", v.Kind, "graph", v.Graph,
		"digest", v.Digest, "k", v.K, "ranks", v.Ranks,
		"disposition", v.Disposition, "lanes", v.Lanes, "status", v.Status,
		"queueMillis", v.QueueMillis, "dpMillis", v.DPMillis, "totalMillis", v.TotalMillis,
	}
	if v.Error != "" {
		attrs = append(attrs, "error", v.Error)
	}
	s.logger.Info("query", attrs...)
	if s.cfg.SlowQuery > 0 && v.TotalMillis >= float64(s.cfg.SlowQuery)/float64(time.Millisecond) {
		s.rec.Add(obs.ServeSlowQueries, 1)
		s.logger.Warn("slow query", attrs...)
	}
}

// resolve settles one job against its flight: normally when the flight
// finishes, early when the job's own context expires first. A job
// leaving as the flight's last member cancels the shared execution —
// and then waits out the (now aborting) flight so the partial DP
// counters still reach the job's result.
func (s *Server) resolve(j *job, f *flight) {
	defer s.followers.Done()
	select {
	case <-f.done:
		s.flights.leave(f)
		s.settle(j, f.res, f.err)
	case <-j.ctx.Done():
		if s.flights.leave(f) {
			<-f.done // aborts at the next batch boundary
			s.settle(j, f.res, j.ctx.Err())
		} else {
			s.settle(j, nil, j.ctx.Err())
		}
	}
}

func (s *Server) settle(j *job, res *Result, err error) {
	if err == nil {
		s.rec.Add(obs.ServeCompleted, 1)
		j.finish(StatusDone, res, nil)
		return
	}
	// The flight's context error is the shared execution's view; the
	// job's own context error (deadline vs explicit cancel) is the one
	// the client should see when both are set.
	if jerr := j.ctx.Err(); jerr != nil && isCtxErr(err) {
		err = jerr
	}
	s.finishErr(j, res, err)
}

// finishErr moves a job to its terminal error state, counting
// abandoned work (context errors) as cancellations.
func (s *Server) finishErr(j *job, res *Result, err error) {
	status := StatusFailed
	if isCtxErr(err) {
		s.rec.Add(obs.ServeCancelled, 1)
		if errors.Is(err, context.Canceled) {
			status = StatusCancelled
		}
	}
	j.finish(status, res, err)
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// execute runs the query's DP under ctx and returns the result with
// its execution counters (also on error, so an aborted sweep reports
// how far it got). Ranks ≤ 1 runs the shared-memory evaluators with
// the server's warm arena; ranks > 1 runs the distributed engine on an
// in-process world with the graph's cached partition. A non-nil trace
// receives live per-phase sweep progress through the evaluators'
// progress callbacks.
func (s *Server) execute(ctx context.Context, req *QueryRequest, tr *QueryTrace) (*Result, error) {
	entry, err := s.registry.get(req.Graph)
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(0, nil)
	res := &Result{Kind: req.Kind}
	handled := false
	if req.Ranks > 1 && s.distRunner != nil {
		handled, err = s.distRunner(ctx, req, rec, res, tr)
	}
	switch {
	case handled:
		// The cluster ran it (or degraded it internally); err stands.
	case req.Ranks > 1:
		err = s.executeDistributed(ctx, entry, req, rec, res, tr)
	default:
		err = s.executeSequential(ctx, entry, req, rec, res, tr)
	}
	snap := rec.Snapshot()
	res.Rounds = snap.Counter(obs.Rounds)
	res.Phases = snap.Counter(obs.Phases)
	res.TotalPhases = req.plannedPhases()
	return res, err
}

func (s *Server) executeSequential(ctx context.Context, entry *graphEntry, req *QueryRequest, rec *obs.Recorder, res *Result, tr *QueryTrace) error {
	opt := mld.Options{
		Seed: req.Seed, Epsilon: req.Epsilon, Rounds: req.Rounds,
		N2: req.N2, Workers: req.Workers,
		Arena: s.arena, Ctx: ctx, Obs: rec,
	}
	if tr != nil {
		opt.Progress = tr.progress
	}
	switch req.Kind {
	case KindPath:
		found, err := mld.DetectPath(entry.G, req.K, opt)
		res.Found = found
		return err
	case KindTree:
		tpl, err := req.template()
		if err != nil {
			return err
		}
		found, err := mld.DetectTree(entry.G, tpl, opt)
		res.Found = found
		return err
	case KindScanStat:
		table, err := mld.ScanTable(entry.G, req.K, req.ZMax, opt)
		res.Table = table
		return err
	case KindMotif:
		spec, err := req.motifSpec()
		if err != nil {
			return err
		}
		found, err := mld.DetectMotif(entry.G, spec, opt)
		res.Found = found
		return err
	default:
		return fmt.Errorf("unknown query kind %q", req.Kind)
	}
}

func (s *Server) executeDistributed(ctx context.Context, entry *graphEntry, req *QueryRequest, rec *obs.Recorder, res *Result, tr *QueryTrace) error {
	cfg, err := s.distConfig(entry, req, req.Ranks, tr)
	if err != nil {
		return err
	}
	cfg.Ctx = ctx
	var mu sync.Mutex
	run := func(c *comm.Comm) error {
		c.EnableObs()
		rerr := runDistributedKind(c, entry.G, req, cfg, res)
		snap := c.ObsSnapshot()
		mu.Lock()
		rec.Add(obs.Rounds, snap.Counter(obs.Rounds))
		rec.Add(obs.Phases, snap.Counter(obs.Phases))
		mu.Unlock()
		return rerr
	}
	err = comm.RunLocal(req.Ranks, comm.CostModel{}, run)
	// Every rank returns the same context error; unwrap the world
	// aggregation so clients see the cause directly.
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return context.DeadlineExceeded
		}
		if errors.Is(err, context.Canceled) {
			return context.Canceled
		}
	}
	return err
}

// gauges renders the service's state gauges for /metrics (values that
// are states, not events — the Recorder counter model can't carry
// them).
func (s *Server) gauges() []obs.Metric {
	entries, bytes := s.cache.stats()
	_, frRecent, _, _ := s.flightRec.stats()
	var draining float64
	if s.draining.Load() {
		draining = 1
	}
	out := []obs.Metric{
		obs.Gauge("midas_serve_queue_depth", "Admitted queries waiting for a worker.", float64(s.queue.len())),
		obs.Gauge("midas_serve_queue_capacity", "Admission queue bound (QueueDepth).", float64(s.cfg.QueueDepth)),
		obs.Gauge("midas_serve_inflight", "Query executions currently running a DP.", float64(s.inflight.Load())),
		obs.Gauge("midas_serve_cache_entries", "Result cache entries.", float64(entries)),
		obs.Gauge("midas_serve_cache_bytes", "Approximate result cache bytes.", float64(bytes)),
		obs.Gauge("midas_serve_graphs", "Graphs resident in the registry.", float64(s.registry.size())),
		obs.Gauge("midas_serve_jobs", "Jobs retained in the job table.", float64(s.jobs.size())),
		obs.Gauge("midas_serve_arena_retained_bytes", "DP slab bytes retained by the shared arena.", float64(s.arena.RetainedBytes())),
		obs.Gauge("midas_serve_draining", "1 while the server refuses new admissions to drain.", draining),
		obs.Gauge("midas_serve_batch_window_seconds", "Admission batching window (0 = batching off).", s.cfg.BatchWindow.Seconds()),
		obs.Gauge("midas_serve_batch_max_lanes", "Lane cap per batched execution.", float64(s.cfg.BatchMaxLanes)),
		obs.Gauge("midas_serve_flight_recorder_traces", "Completed query traces retained by the flight recorder.", float64(frRecent)),
		obs.Gauge("midas_uptime_seconds", "Seconds since this midas-serve process started.", time.Since(s.started).Seconds()),
		obs.BuildInfoMetric(),
	}
	if st := s.cfg.Store; st != nil {
		out = append(out,
			obs.Gauge("midas_store_mapped_bytes", "Bytes of graph files resident via the store's mappings.", float64(st.MappedBytes())),
			obs.Gauge("midas_store_resident_graphs", "Stored graphs currently mapped.", float64(st.Resident())),
		)
	}
	if s.extraGauges != nil {
		out = append(out, s.extraGauges()...)
	}
	return out
}

// loadLevel quantizes the current queue pressure for core.AutoPlanN2:
// queued queries per worker, floored. 0 = an idle or keeping-up
// service.
func (s *Server) loadLevel() int {
	return s.queue.len() / s.cfg.Workers
}
