package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func storedTestGraph() *graph.Graph {
	g := graph.RandomGNM(120, 400, 71)
	l := make([]int32, g.NumVertices())
	for i := range l {
		l[i] = int32(i % 3)
	}
	g.SetLabels(l)
	return g
}

// TestStoreRestartServesWithoutReparse is the tentpole's end-to-end
// pin: load a graph into a store-backed server, restart (new Server,
// same directory), and require (a) the graph is query-ready by name
// with no re-POST, (b) answers across all kinds and both execution
// modes are byte-identical to a parsed in-memory run, and (c) the
// restarted process answered from the mmap — a store miss, zero
// re-parse (pinned by the counters: the graph arrives via Acquire,
// not AddGraph).
func TestStoreRestartServesWithoutReparse(t *testing.T) {
	dir := t.TempDir()
	g := storedTestGraph()

	// Generation 1: write-through.
	st1 := openTestStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	s1.AddGraph("persisted", g)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s1.Shutdown(ctx) //nolint:errcheck
	cancel()

	// Generation 2: a fresh server over the same directory. No AddGraph.
	st2 := openTestStore(t, dir)
	s2 := New(Config{Workers: 2, Store: st2})
	if err := s2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx) //nolint:errcheck
	}()
	base := "http://" + s2.Addr()

	// The restored name must list without forcing a map.
	resp, body := getBody(t, base+"/v1/graphs")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "persisted") {
		t.Fatalf("restored graph not listed: %d %s", resp.StatusCode, body)
	}
	if st2.Resident() != 0 {
		t.Fatal("listing alone mapped the graph; the map must be lazy")
	}

	queries := []QueryRequest{
		{Graph: "persisted", Kind: KindPath, K: 5, Seed: 3, Rounds: 2},
		{Graph: "persisted", Kind: KindPath, K: 4, Seed: 9, Rounds: 2, Ranks: 2},
		{Graph: "persisted", Kind: KindScanStat, K: 4, ZMax: 3, Seed: 5, Rounds: 2},
		{Graph: "persisted", Kind: KindMotif, K: 4, Seed: 7, Rounds: 2,
			Motif: map[string]int{"0": 1, "1": 1}},
	}
	for _, q := range queries {
		resp, body := postJSON(t, base+"/v1/query", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s ranks=%d: %d %s", q.Kind, q.Ranks, resp.StatusCode, body)
		}
		jv := decodeJob(t, body)
		if jv.Status != StatusDone || jv.Result == nil {
			t.Fatalf("%s ranks=%d not done: %s", q.Kind, q.Ranks, body)
		}
		// Byte-identical to the parsed in-memory path.
		switch q.Kind {
		case KindPath:
			want := detectParsedPath(t, g, q)
			if jv.Result.Found != want {
				t.Fatalf("%s ranks=%d: served %v, parsed %v", q.Kind, q.Ranks, jv.Result.Found, want)
			}
		case KindScanStat:
			want, err := mld.ScanTable(g, q.K, q.ZMax, mld.Options{Seed: q.Seed, Rounds: q.Rounds})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				for j := range want[i] {
					if jv.Result.Table[i][j] != want[i][j] {
						t.Fatalf("scan table differs at [%d][%d]", i, j)
					}
				}
			}
		case KindMotif:
			want, err := mld.DetectMotif(g, &mld.MotifSpec{K: q.K, Counts: map[int32]int{0: 1, 1: 1}},
				mld.Options{Seed: q.Seed, Rounds: q.Rounds})
			if err != nil {
				t.Fatal(err)
			}
			if jv.Result.Found != want {
				t.Fatalf("motif: served %v, parsed %v", jv.Result.Found, want)
			}
		}
	}

	// Zero re-parse: exactly one cold map (shared by every query), and
	// the mapped-bytes gauge reflects it.
	if got := s2.rec.Get(obs.StoreMisses); got != 1 {
		t.Fatalf("store misses = %d, want exactly 1 (one lazy map)", got)
	}
	if st2.Resident() != 1 || st2.MappedBytes() != graph.V2FileSize(g) {
		t.Fatalf("residency after queries: %d graphs / %d bytes, want 1 / %d",
			st2.Resident(), st2.MappedBytes(), graph.V2FileSize(g))
	}
	_, metrics := getBody(t, base+"/metrics")
	if v := metricValue(t, string(metrics), "midas_store_mapped_bytes"); int64(v) != graph.V2FileSize(g) {
		t.Fatalf("midas_store_mapped_bytes = %v, want %d", v, graph.V2FileSize(g))
	}
	if v := metricValue(t, string(metrics), "midas_store_misses_total"); v != 1 {
		t.Fatalf("midas_store_misses_total = %v, want 1", v)
	}
}

func detectParsedPath(t *testing.T, g *graph.Graph, q QueryRequest) bool {
	t.Helper()
	// Solo and distributed serve paths both agree with the sequential
	// evaluator (the engine's answers are mode-independent given the
	// seed — the equivalence the serve suite pins elsewhere).
	want, err := mld.DetectPath(g, q.K, mld.Options{Seed: q.Seed, Rounds: q.Rounds})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestStorePartitionArtifactReuse pins the derived-artifact path: a
// distributed query persists its partition; a restarted server loads
// the artifact instead of re-partitioning (observable as the .midp
// file existing before the second server ever partitions).
func TestStorePartitionArtifactReuse(t *testing.T) {
	dir := t.TempDir()
	g := storedTestGraph()

	st1 := openTestStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	s1.AddGraph("g", g)
	if err := s1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	q := QueryRequest{Graph: "g", Kind: KindPath, K: 4, Seed: 9, Rounds: 1, Ranks: 2}
	resp, body := postJSON(t, "http://"+s1.Addr()+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gen1 query: %d %s", resp.StatusCode, body)
	}
	gen1 := decodeJob(t, body)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Shutdown(ctx) //nolint:errcheck
	cancel()

	// The artifact must have been written through.
	digest := g.Digest()
	key := store.PartKey{Scheme: "block", Parts: 2, Seed: q.Seed ^ 0x70a3d70a3d70a3d7}
	if _, err := st1.GetPartition(digest, key); err != nil {
		t.Fatalf("partition artifact not persisted: %v", err)
	}

	// Generation 2 answers the same query identically, with the
	// partition loaded from disk (same answer pins same partition use).
	st2 := openTestStore(t, dir)
	s2 := New(Config{Workers: 1, Store: st2})
	if err := s2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx) //nolint:errcheck
	}()
	resp, body = postJSON(t, "http://"+s2.Addr()+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gen2 query: %d %s", resp.StatusCode, body)
	}
	gen2 := decodeJob(t, body)
	if gen1.Result == nil || gen2.Result == nil || gen1.Result.Found != gen2.Result.Found {
		t.Fatalf("answers differ across restart: %+v vs %+v", gen1.Result, gen2.Result)
	}
}

// TestStoreMissingGraphIs404 keeps the unknown-name contract with a
// store configured, and distinguishes a manifest entry whose file was
// deleted out from under the store (a 500, not a 404).
func TestStoreMissingGraphIs404(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s := New(Config{Workers: 1, Store: st})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()
	resp, _ := postJSON(t, "http://"+s.Addr()+"/v1/query",
		QueryRequest{Graph: "nope", Kind: KindPath, K: 3, Rounds: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", resp.StatusCode)
	}
}
