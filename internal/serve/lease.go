package serve

// Cross-replica lease execution: one replica's share of a distributed
// query whose phase-group world spans several midas-serve processes.
// The cluster coordinator (internal/cluster) picks a world shape,
// leases ranks 1..size-1 to peer replicas over their HTTP APIs, and
// runs rank 0 itself — every participant lands here, connecting the
// hardened TCP transport and executing the same core engine a local
// world would. The partition comes from the graph entry's cache (store
// artifact or computed once), with the same derived seed buildPlan
// uses, so every replica's rank sees bit-identical placement.

import (
	"context"
	"fmt"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/partition"
)

// LeaseWorld pins one participant's membership in a cross-replica
// world: the world's shape, this replica's rank, and the rendezvous
// address (rank 0's TCP listen address, which the coordinator owns).
type LeaseWorld struct {
	Rank     int
	Size     int
	RootAddr string
	Options  comm.TCPOptions
}

// ExecuteLease runs this replica's share of a distributed query on a
// leased TCP world. Blocks until the whole world connects (bounded by
// Options.ConnectTimeout) and the DP finishes. The returned result
// carries the answer and the world-total execution counters on rank 0;
// peer ranks return an empty result. A peer death mid-query surfaces
// as an error (the transport's send retries exhaust, or the endpoint
// closes), never a hang — the cluster layer maps it to its resilient
// retry path.
func (s *Server) ExecuteLease(ctx context.Context, req *QueryRequest, w LeaseWorld) (res *Result, err error) {
	entry, err := s.registry.get(req.Graph)
	if err != nil {
		return nil, err
	}
	cfg, err := s.distConfig(entry, req, w.Size, nil)
	if err != nil {
		return nil, err
	}
	cfg.Ctx = ctx
	c, cerr := comm.ConnectTCPOpts(w.Rank, w.Size, w.RootAddr, comm.CostModel{}, w.Options)
	if cerr != nil {
		return nil, fmt.Errorf("serve: lease world %s rank %d/%d: %w", w.RootAddr, w.Rank, w.Size, cerr)
	}
	defer c.Close()
	// A rank blocked in recv on a lost peer's frame cannot see that
	// peer's death — only a local close unblocks the inbox. Tie the
	// world to ctx: the coordinator cancels the lease context the
	// moment any participant fails, which closes this comm and turns
	// the blocked recv into the ErrClosed panic recovered below.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-watchdogDone:
		}
	}()
	// The transport signals unrecoverable peer loss by panic (the same
	// contract comm.runWorld recovers); convert it to an error here so
	// the lease fails cleanly instead of killing the process.
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(error)
			if !ok {
				panic(p)
			}
			err = fmt.Errorf("serve: lease rank %d/%d: %w", w.Rank, w.Size, e)
		}
	}()
	c.EnableObs()
	res = &Result{Kind: req.Kind}
	if rerr := runDistributedKind(c, entry.G, req, cfg, res); rerr != nil {
		return res, rerr
	}
	// Fold the whole world's execution counters onto the coordinator so
	// a fleet-run query reports the same Rounds/Phases a local world
	// would (collective: every rank participates).
	snaps := c.GatherObsSnapshots(0)
	if w.Rank == 0 {
		for _, snap := range snaps {
			res.Rounds += snap.Counter(obs.Rounds)
			res.Phases += snap.Counter(obs.Phases)
		}
		res.TotalPhases = req.plannedPhases()
	}
	return res, nil
}

// distConfig derives the core configuration shared by every execution
// of a distributed query — local world or cross-replica lease. The
// partition seed is the same derivation buildPlan uses, so the cached
// partition is bit-identical to a from-scratch run.
func (s *Server) distConfig(entry *graphEntry, req *QueryRequest, worldSize int, tr *QueryTrace) (core.Config, error) {
	scheme := partition.Scheme(req.Scheme)
	if scheme == "" {
		scheme = partition.SchemeBlock
	}
	n1 := req.N1
	if n1 <= 0 {
		n1 = worldSize
	}
	part, err := entry.partitionFor(scheme, n1, req.Seed^0x70a3d70a3d70a3d7)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		K: req.K, N1: n1, N2: req.N2, Seed: req.Seed,
		Epsilon: req.Epsilon, Rounds: req.Rounds, Scheme: scheme,
		Part: part, NoTiming: true,
	}
	if tr != nil {
		cfg.Progress = func(done, _ int64) { tr.progress(done) }
	}
	return cfg, nil
}

// runDistributedKind executes one rank's share of a distributed query
// on world c, capturing the answer into res on rank 0.
func runDistributedKind(c *comm.Comm, g *graph.Graph, req *QueryRequest, cfg core.Config, res *Result) error {
	switch req.Kind {
	case KindPath:
		found, err := core.RunPath(c, g, cfg)
		if c.Rank() == 0 {
			res.Found = found
		}
		return err
	case KindTree:
		tpl, err := req.template()
		if err != nil {
			return err
		}
		found, err := core.RunTree(c, g, tpl, cfg)
		if c.Rank() == 0 {
			res.Found = found
		}
		return err
	case KindScanStat:
		table, err := core.RunScan(c, g, core.ScanConfig{Config: cfg, ZMax: req.ZMax})
		if c.Rank() == 0 {
			res.Table = table
		}
		return err
	case KindMotif:
		spec, err := req.motifSpec()
		if err != nil {
			return err
		}
		found, err := core.RunMotif(c, g, spec, cfg)
		if c.Rank() == 0 {
			res.Found = found
		}
		return err
	default:
		return fmt.Errorf("unknown query kind %q", req.Kind)
	}
}
