package serve

// Tests for the request-scoped observability plane: the end-to-end
// trace of ISSUE acceptance (caller-supplied request ID → access log,
// flight recorder, Chrome trace lane), the disposition pins (cache-hit
// / singleflight-joined / batched-lane each record their own), the
// error envelope, panic recovery, and flight-recorder eviction.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
)

// syncBuffer is a goroutine-safe log sink for the slog JSON handler.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func testLogger() (*slog.Logger, *syncBuffer) {
	buf := &syncBuffer{}
	return slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug})), buf
}

// postJSONID posts a JSON body with an explicit X-Midas-Request-Id.
func postJSONID(t *testing.T, url, id string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := new(bytes.Buffer)
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// fetchTrace fetches one request's TraceView from the debug API.
func fetchTrace(t *testing.T, base, id string) (TraceView, int) {
	t.Helper()
	resp, body := getBody(t, base+"/v1/debug/requests/"+id)
	var v TraceView
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("bad trace JSON %s: %v", body, err)
		}
	}
	return v, resp.StatusCode
}

// stageIndex returns the index of the first stage with the given name
// (-1 when absent).
func stageIndex(v TraceView, name string) int {
	for i, ev := range v.Stages {
		if ev.Stage == name {
			return i
		}
	}
	return -1
}

// accessLogLine finds the first JSON log line with the given msg and
// requestId, decoded into a map.
func accessLogLine(t *testing.T, logs, msg, id string) (map[string]any, bool) {
	t.Helper()
	for _, line := range strings.Split(logs, "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if m["msg"] == msg && m["requestId"] == id {
			return m, true
		}
	}
	return nil, false
}

// TestRequestTraceEndToEnd is the ISSUE acceptance path: a query run
// with a caller-supplied X-Midas-Request-Id is findable by that ID in
// (a) the JSON access log, (b) GET /v1/debug/requests/{id} with a
// monotone received → queued → admitted → dp → done timeline whose dp
// stage carries per-phase progress, and (c) a serve-lane event in the
// exported Chrome trace.
func TestRequestTraceEndToEnd(t *testing.T) {
	logger, logs := testLogger()
	s := testServer(t, Config{Workers: 2, Logger: logger, SlowQuery: time.Nanosecond})
	base := "http://" + s.Addr()
	const id = "trace-e2e-42"

	// k=10 with N2=64 plans 2^10/64 = 16 phases.
	resp, body := postJSONID(t, base+"/v1/query", id, QueryRequest{
		Graph: "g", Kind: KindPath, K: 10, Seed: 7, Rounds: 1, N2: 64,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(RequestIDHeader); got != id {
		t.Fatalf("response %s = %q, want the caller's %q", RequestIDHeader, got, id)
	}

	// (a) The structured query access log carries the ID.
	line, ok := accessLogLine(t, logs.String(), "query", id)
	if !ok {
		t.Fatalf("no query access-log line for %s in:\n%s", id, logs.String())
	}
	for _, field := range []string{"jobId", "kind", "graph", "digest", "disposition", "status", "totalMillis"} {
		if _, ok := line[field]; !ok {
			t.Errorf("access log line missing %q: %v", field, line)
		}
	}
	if line["disposition"] != DispSolo || line["status"] != StatusDone {
		t.Errorf("access log disposition/status = %v/%v, want solo/done", line["disposition"], line["status"])
	}
	// SlowQuery=1ns makes every query slow: the warn line and counter fire.
	if _, ok := accessLogLine(t, logs.String(), "slow query", id); !ok {
		t.Errorf("no slow-query log line despite a 1ns threshold")
	}

	// (b) The flight recorder serves the full stage timeline by ID.
	v, code := fetchTrace(t, base, id)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/debug/requests/%s: %d", id, code)
	}
	if v.ID != id || v.Status != StatusDone || v.Disposition != DispSolo {
		t.Fatalf("trace = id %q status %q disposition %q, want %q/done/solo", v.ID, v.Status, v.Disposition, id)
	}
	order := []string{StageReceived, StageQueued, StageAdmitted, StageDP, StageDone}
	prev := -1
	for _, name := range order {
		i := stageIndex(v, name)
		if i < 0 {
			t.Fatalf("stage %q missing from timeline %+v", name, v.Stages)
		}
		if i <= prev {
			t.Fatalf("stage %q out of order in timeline %+v", name, v.Stages)
		}
		prev = i
	}
	for i := 1; i < len(v.Stages); i++ {
		if v.Stages[i].At.Before(v.Stages[i-1].At) {
			t.Fatalf("stage timestamps not monotone: %+v", v.Stages)
		}
	}
	dp := v.Stages[stageIndex(v, StageDP)]
	if dp.TotalPhases != 16 {
		t.Fatalf("dp stage TotalPhases = %d, want 16", dp.TotalPhases)
	}
	if dp.Phases != 16 {
		t.Fatalf("dp stage Phases = %d, want 16 (per-phase progress not reported)", dp.Phases)
	}
	if v.TotalMillis <= 0 || v.DPMillis <= 0 {
		t.Fatalf("derived latencies TotalMillis=%v DPMillis=%v, want > 0", v.TotalMillis, v.DPMillis)
	}

	// The recorder list shows it completed, and the live snapshot is sane.
	_, reqBody := getBody(t, base+"/v1/debug/requests")
	var dr DebugRequests
	if err := json.Unmarshal(reqBody, &dr); err != nil {
		t.Fatalf("bad /v1/debug/requests JSON: %v", err)
	}
	found := false
	for _, tv := range dr.Recent {
		if tv.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not in recent completions", id)
	}
	if dr.Snapshot.QueueCapacity != 64 || len(dr.Snapshot.Workers) != 2 {
		t.Errorf("snapshot queueCapacity=%d workers=%v, want 64 / 2 entries", dr.Snapshot.QueueCapacity, dr.Snapshot.Workers)
	}
	if dr.Snapshot.Build.GoVersion == "" || dr.Snapshot.UptimeSeconds <= 0 {
		t.Errorf("snapshot build/uptime not populated: %+v", dr.Snapshot)
	}

	// (c) The Chrome trace export has a serve-lane span for the request.
	_, traceBody := getBody(t, base+"/v1/debug/trace")
	if !strings.Contains(string(traceBody), "midas-serve queries") {
		t.Fatalf("Chrome export missing the serve process lane:\n%.400s", traceBody)
	}
	if !strings.Contains(string(traceBody), "req "+id) {
		t.Fatalf("Chrome export missing the request's span (want %q)", "req "+id)
	}

	// Slow-query counter made it to /metrics, alongside build info.
	_, metrics := getBody(t, base+"/metrics")
	if c := metricValue(t, string(metrics), "midas_serve_slow_queries_total"); c < 1 {
		t.Errorf("slow-query counter %v, want >= 1", c)
	}
	if !strings.Contains(string(metrics), "midas_build_info{") {
		t.Errorf("/metrics missing midas_build_info")
	}
	if !strings.Contains(string(metrics), "midas_uptime_seconds") {
		t.Errorf("/metrics missing midas_uptime_seconds")
	}
}

// TestTraceDispositionCacheHit: a repeat of a finished query records
// the cache-hit disposition with a received → cache-hit → done
// timeline and no job.
func TestTraceDispositionCacheHit(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()
	q := QueryRequest{Graph: "g", Kind: KindPath, K: 6, Seed: 3, Rounds: 1}

	if resp, body := postJSONID(t, base+"/v1/query", "disp-first", q); resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSONID(t, base+"/v1/query", "disp-cached", q); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat query: %d %s", resp.StatusCode, body)
	}
	v, code := fetchTrace(t, base, "disp-cached")
	if code != http.StatusOK {
		t.Fatalf("trace fetch: %d", code)
	}
	if v.Disposition != DispCacheHit || v.Status != StatusDone {
		t.Fatalf("disposition %q status %q, want cache-hit/done", v.Disposition, v.Status)
	}
	if stageIndex(v, StageCacheHit) < 0 {
		t.Fatalf("no cache-hit stage in %+v", v.Stages)
	}
	if v.JobID != "" {
		t.Fatalf("cache fast-path trace has job %q, want none", v.JobID)
	}
}

// TestTraceDispositionSingleflight: a query identical to one already
// executing attaches to its flight and records singleflight-joined.
func TestTraceDispositionSingleflight(t *testing.T) {
	s := testServer(t, Config{Workers: 4})
	base := "http://" + s.Addr()
	s.AddGraph("big", graph.RandomGNM(150, 600, 2))
	q := QueryRequest{Graph: "big", Kind: KindPath, K: 16, Seed: 5, Rounds: 1, N2: 64}

	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSONID(t, base+"/v1/query", "disp-sf-lead", q)
	}()
	// Wait until the leader's DP is actually running, so the follower
	// deterministically finds an open flight (not an empty cache slot).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, code := fetchTrace(t, base, "disp-sf-lead"); code == http.StatusOK && stageIndex(v, StageDP) >= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader query never reached its dp stage")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, body := postJSONID(t, base+"/v1/query", "disp-sf-join", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower query: %d %s", resp.StatusCode, body)
	}
	<-done

	v, code := fetchTrace(t, base, "disp-sf-join")
	if code != http.StatusOK {
		t.Fatalf("trace fetch: %d", code)
	}
	if v.Disposition != DispSingleflight {
		t.Fatalf("follower disposition %q, want singleflight-joined", v.Disposition)
	}
	if stageIndex(v, StageSingleflightJoined) < 0 {
		t.Fatalf("no singleflight-joined stage in %+v", v.Stages)
	}
	if lead, _ := fetchTrace(t, base, "disp-sf-lead"); lead.Disposition != DispSolo {
		t.Fatalf("leader disposition %q, want solo", lead.Disposition)
	}
}

// TestTraceDispositionBatchedLane: two compatible queries assembled
// into one batched execution both record batched-lane with the batch's
// occupancy and per-lane final phase counts.
func TestTraceDispositionBatchedLane(t *testing.T) {
	s := testServer(t, Config{Workers: 1, BatchWindow: 250 * time.Millisecond, BatchMaxLanes: 8})
	base := "http://" + s.Addr()

	var wg sync.WaitGroup
	for i, k := range []int{6, 7} {
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			resp, body := postJSONID(t, base+"/v1/query", fmt.Sprintf("disp-lane-%d", i), QueryRequest{
				Graph: "g", Kind: KindPath, K: k, Seed: uint64(20 + i), Rounds: 1,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("query %d: %d %s", i, resp.StatusCode, body)
			}
		}(i, k)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, k := range []int{6, 7} {
		v, code := fetchTrace(t, base, fmt.Sprintf("disp-lane-%d", i))
		if code != http.StatusOK {
			t.Fatalf("trace %d fetch: %d", i, code)
		}
		if v.Disposition != DispBatchedLane || v.Lanes != 2 {
			t.Fatalf("trace %d disposition %q lanes %d, want batched-lane/2", i, v.Disposition, v.Lanes)
		}
		bi := stageIndex(v, StageBatchAssembled)
		if bi < 0 {
			t.Fatalf("trace %d has no batch-assembled stage: %+v", i, v.Stages)
		}
		dpi := stageIndex(v, StageDP)
		if dpi < bi {
			t.Fatalf("trace %d dp stage precedes batch assembly: %+v", i, v.Stages)
		}
		want := int64(1 << uint(k) / 128)
		if want < 1 {
			want = 1
		}
		if dp := v.Stages[dpi]; dp.Phases != want {
			t.Fatalf("trace %d (k=%d) dp phases %d, want %d from its LaneResult", i, k, dp.Phases, want)
		}
	}
	_, metrics := getBody(t, base+"/metrics")
	if c := metricValue(t, string(metrics), "midas_serve_batch_assembly_seconds_count"); c < 1 {
		t.Errorf("batch-assembly histogram count %v, want >= 1", c)
	}
}

// TestErrorEnvelopeCarriesRequestID: error responses are the uniform
// {error, request_id} envelope, echoing the caller-supplied ID.
func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()

	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "env-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var env apiError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error == "" || env.RequestID != "env-1" {
		t.Fatalf("envelope %+v, want error text and request_id env-1", env)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "env-1" {
		t.Fatalf("response header ID %q, want env-1", got)
	}

	// Without a caller ID the server generates one and still stamps both.
	resp2, body2 := getBody(t, base+"/v1/jobs/nope")
	var env2 apiError
	if err := json.Unmarshal(body2, &env2); err != nil {
		t.Fatal(err)
	}
	if env2.RequestID == "" || resp2.Header.Get(RequestIDHeader) != env2.RequestID {
		t.Fatalf("generated ID mismatch: envelope %q, header %q", env2.RequestID, resp2.Header.Get(RequestIDHeader))
	}
}

// TestMiddlewareRecoversPanic: a handler panic becomes a JSON 500
// envelope instead of a dropped connection.
func TestMiddlewareRecoversPanic(t *testing.T) {
	logger, logs := testLogger()
	s := New(Config{Workers: 1, Logger: logger})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	h := s.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/query", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rr.Code)
	}
	var env apiError
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatalf("panic response is not the JSON envelope: %q", rr.Body.String())
	}
	if env.RequestID == "" {
		t.Fatal("panic envelope has no request_id")
	}
	if !strings.Contains(logs.String(), "boom") {
		t.Fatal("panic not logged")
	}
}

// TestFlightRecorderEviction: completed traces past the ring capacity
// are evicted oldest-first and counted.
func TestFlightRecorderEviction(t *testing.T) {
	s := testServer(t, Config{Workers: 1, FlightRecorderSize: 2})
	base := "http://" + s.Addr()
	for i := 0; i < 4; i++ {
		resp, body := postJSONID(t, base+"/v1/query", fmt.Sprintf("evict-%d", i), QueryRequest{
			Graph: "g", Kind: KindPath, K: 4, Seed: uint64(100 + i), Rounds: 1,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, body)
		}
	}
	_, body := getBody(t, base+"/v1/debug/requests")
	var dr DebugRequests
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Recent) != 2 {
		t.Fatalf("recent ring holds %d traces, want 2", len(dr.Recent))
	}
	if dr.Snapshot.FlightRecorder.Evicted != 2 {
		t.Fatalf("evicted %d, want 2", dr.Snapshot.FlightRecorder.Evicted)
	}
	if dr.Recent[0].ID != "evict-3" || dr.Recent[1].ID != "evict-2" {
		t.Fatalf("recent order %q/%q, want evict-3/evict-2 (newest first)", dr.Recent[0].ID, dr.Recent[1].ID)
	}
	if _, code := fetchTrace(t, base, "evict-0"); code != http.StatusNotFound {
		t.Fatalf("evicted trace still resolvable (code %d)", code)
	}
	_, metrics := getBody(t, base+"/metrics")
	if c := metricValue(t, string(metrics), "midas_serve_trace_evictions_total"); c != 2 {
		t.Fatalf("eviction counter %v, want 2", c)
	}
}
